"""Tests for the broadcast serving daemon (repro.serving).

Strategy: the protocol, segment and worker-runtime layers are exercised
in-process (that is where the logic lives); a handful of end-to-end tests
launch a real daemon -- forked workers, shared-memory segment, unix socket
-- and pin down the operational contract: bit-identical answers, bounded
queues with busy/retry-after, crash -> respawn without wrong answers,
refresh swaps that never serve a torn cycle, idempotent shutdown.
"""

import dataclasses
import io
import random
import socket
import threading
import time

import pytest

from repro.engine.system import AirSystem
from repro.serving import (
    ProtocolError,
    ServeConfig,
    ServerBusy,
    ServerError,
    ServerHandle,
    ServingClient,
    SharedArtifactSegment,
    run_load,
)
from repro.serving.protocol import (
    encode_frame,
    raise_for_status,
    read_frame,
    write_frame,
)
from repro.serving.worker import WorkerRuntime


BASE_CONFIG = ServeConfig(
    network="milan",
    scale=0.01,
    seed=3,
    regions=8,
    landmarks=4,
    methods=("NR",),
    workers=2,
    max_pending=8,
    routing="region",
)


@pytest.fixture(scope="module")
def direct_system():
    """The reference: a direct in-process AirSystem over the same config."""
    return AirSystem.from_config(BASE_CONFIG.experiment_config())


@pytest.fixture(scope="module")
def server(direct_system):
    handle = ServerHandle.launch(BASE_CONFIG)
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def query_pairs(direct_system):
    rng = random.Random(17)
    nodes = direct_system.network.node_ids()
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(10)]


def _direct_result(system, source, target):
    options = system.default_options.replace(tune_in_offset=0)
    return system.query("NR", source, target, options=options)


# ----------------------------------------------------------------------
# Protocol layer
# ----------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            write_frame(left, {"op": "ping", "n": 3})
            assert read_frame(right) == {"op": "ping", "n": 3}
        finally:
            left.close()
            right.close()

    def test_clean_eof_reads_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert read_frame(right) is None
        finally:
            right.close()

    def test_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        try:
            frame = encode_frame({"op": "ping"})
            left.sendall(frame[: len(frame) - 2])
            left.close()
            with pytest.raises(ProtocolError):
                read_frame(right)
        finally:
            right.close()

    def test_oversized_length_prefix_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(ProtocolError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_object_payload_rejected(self):
        left, right = socket.socketpair()
        try:
            payload = b"[1,2,3]"
            left.sendall(len(payload).to_bytes(4, "little") + payload)
            with pytest.raises(ProtocolError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_raise_for_status_translates(self):
        assert raise_for_status({"status": "ok", "x": 1})["x"] == 1
        with pytest.raises(ServerBusy) as busy:
            raise_for_status({"status": "busy", "retry_after_ms": 12.5})
        assert busy.value.retry_after_ms == 12.5
        with pytest.raises(ServerError, match="boom"):
            raise_for_status({"status": "error", "error": "boom"})
        with pytest.raises(ProtocolError):
            raise_for_status({"status": "wat"})


# ----------------------------------------------------------------------
# Shared segment
# ----------------------------------------------------------------------
class TestSharedArtifactSegment:
    @pytest.fixture()
    def segment(self, direct_system):
        scheme = direct_system.scheme("NR")
        published = SharedArtifactSegment.publish(
            direct_system.network, {"NR": scheme.artifact()}
        )
        yield published
        published.unlink()
        published.close()

    def test_rejects_stale_artifacts(self, direct_system):
        import dataclasses

        scheme = direct_system.scheme("NR")
        artifact = dataclasses.replace(scheme.artifact(), network_fingerprint="deadbeef")
        with pytest.raises(ValueError, match="fingerprint"):
            SharedArtifactSegment.publish(direct_system.network, {"NR": artifact})

    def test_attach_maps_identical_csr(self, segment, direct_system):
        attached = SharedArtifactSegment.attach(segment.name)
        original = direct_system.network.ensure_csr()
        shared = attached.csr_graph()
        assert shared.buffer_backed
        assert list(shared.ids) == list(original.ids)
        assert list(shared.fwd_offsets) == list(original.fwd_offsets)
        assert list(shared.fwd_targets) == list(original.fwd_targets)
        assert list(shared.fwd_weights) == list(original.fwd_weights)
        assert list(shared.rev_offsets) == list(original.rev_offsets)
        # The views must be released before the mapping can unmap.
        del shared
        assert attached.close() is True

    def test_restored_network_adopts_the_shared_snapshot(self, segment, direct_system):
        attached = SharedArtifactSegment.attach(segment.name)
        network = attached.restore_network()
        assert network.fingerprint() == direct_system.network.fingerprint()
        assert network.csr_snapshot() is not None
        assert network.csr_snapshot().buffer_backed
        del network
        assert attached.close() is True

    def test_artifact_lookup_and_miss(self, segment):
        attached = SharedArtifactSegment.attach(segment.name)
        artifact = attached.artifact("NR")
        assert artifact.scheme == "NR"
        with pytest.raises(KeyError, match="EB"):
            attached.artifact("EB")
        del artifact
        assert attached.close() is True

    def test_bad_magic_rejected(self, segment):
        from multiprocessing import shared_memory

        raw = shared_memory.SharedMemory(create=True, size=64)
        try:
            raw.buf[:4] = b"NOPE"
            with pytest.raises(ValueError, match="magic"):
                SharedArtifactSegment.attach(raw.name)
        finally:
            raw.close()
            raw.unlink()

    def test_close_and_unlink_are_idempotent(self, direct_system):
        scheme = direct_system.scheme("NR")
        published = SharedArtifactSegment.publish(
            direct_system.network, {"NR": scheme.artifact()}
        )
        published.unlink()
        published.unlink()
        assert published.close() is True
        assert published.close() is True
        with pytest.raises(ValueError, match="closed"):
            published.csr_graph()


# ----------------------------------------------------------------------
# Worker runtime (in-process)
# ----------------------------------------------------------------------
class TestWorkerRuntime:
    @pytest.fixture()
    def runtime(self, direct_system):
        scheme = direct_system.scheme("NR")
        segment = SharedArtifactSegment.publish(
            direct_system.network, {"NR": scheme.artifact()}
        )
        runtime = WorkerRuntime(0, config=BASE_CONFIG.experiment_config())
        runtime.load_segment(segment.name)
        yield runtime
        runtime.shutdown()
        segment.unlink()
        segment.close()

    def test_query_matches_the_direct_system(self, runtime, direct_system, query_pairs):
        for source, target in query_pairs:
            response = runtime.handle(
                {
                    "op": "query",
                    "method": "NR",
                    "source": source,
                    "target": target,
                    "tune_in_offset": 0,
                    "with_path": True,
                }
            )
            reference = _direct_result(direct_system, source, target)
            assert response["status"] == "ok"
            assert response["distance"] == reference.distance
            assert response["tuning_time_packets"] == reference.metrics.tuning_time_packets
            assert response["access_latency_packets"] == reference.metrics.access_latency_packets
            assert response["path"] == list(reference.path)

    def test_batch_matches_sequential_queries(self, runtime, direct_system, query_pairs):
        response = runtime.handle(
            {
                "op": "query_batch",
                "method": "NR",
                "queries": [list(pair) for pair in query_pairs],
                "tune_in_offset": 0,
            }
        )
        assert response["status"] == "ok"
        expected = [
            _direct_result(direct_system, source, target).distance
            for source, target in query_pairs
        ]
        assert response["distances"] == expected
        assert response["latency"]["count"] == len(query_pairs)

    def test_bad_requests_answer_errors_without_dying(self, runtime):
        unknown = runtime.handle({"op": "frobnicate"})
        assert unknown["status"] == "error"
        bad_method = runtime.handle(
            {"op": "query", "method": "XYZ", "source": 0, "target": 1}
        )
        assert bad_method["status"] == "error"
        missing_field = runtime.handle({"op": "query", "method": "NR"})
        assert missing_field["status"] == "error"
        # Still serving afterwards.
        assert runtime.handle({"op": "ping"})["status"] == "ok"
        assert runtime.requests_served == 4

    def test_shared_snapshot_mutation_refused_with_republish_guidance(
        self, runtime, direct_system, query_pairs
    ):
        """Serving networks are immutable; the error says how to refresh.

        The worker's network maps a shared read-only segment.  A weight
        update must be refused *before* the dict state moves (otherwise
        network and snapshot would permanently disagree), the message must
        point at the re-publish workflow, and the worker must keep serving
        correct answers afterwards.
        """
        from repro.network.csr import ImmutableSnapshotError

        network = runtime.system.network
        source, target = None, None
        for node_id in network.node_ids():
            neighbors = network.neighbors(node_id)
            if neighbors:
                source, target = node_id, neighbors[0][0]
                break
        assert source is not None
        before = network.edge_weight(source, target)
        with pytest.raises(
            ImmutableSnapshotError,
            match="serving snapshots are immutable; refresh via re-publish",
        ) as excinfo:
            network.update_edge_weight(source, target, before + 1.0)
        assert isinstance(excinfo.value, TypeError)  # refused as a type contract
        assert network.edge_weight(source, target) == before  # nothing moved
        # Still serving, and still bit-identical to the direct system.
        query_source, query_target = query_pairs[0]
        response = runtime.handle(
            {
                "op": "query",
                "method": "NR",
                "source": query_source,
                "target": query_target,
                "tune_in_offset": 0,
            }
        )
        assert response["status"] == "ok"
        reference = _direct_result(direct_system, query_source, query_target)
        assert response["distance"] == reference.distance

    def test_fleet_scenario_validation(self, runtime):
        response = runtime.handle(
            {"op": "fleet", "method": "NR", "scenario": "no-such", "devices": 5}
        )
        assert response["status"] == "error"
        assert "no-such" in response["error"]

    def test_fleet_matches_direct_simulation(self, runtime, direct_system):
        from repro.experiments import FLEET_SCENARIOS

        response = runtime.handle(
            {"op": "fleet", "method": "NR", "scenario": "trickle", "devices": 8, "seed": 2}
        )
        assert response["status"] == "ok"
        devices = FLEET_SCENARIOS["trickle"](direct_system.network, 8, seed=2)
        run = direct_system.simulate_fleet("NR", devices, seed=2)
        assert response["devices"] == run.num_devices
        assert response["mismatches"] == run.mismatches
        assert response["replays"] == run.replays
        assert set(response["latency_percentiles"]) == {"50", "90", "99"}

    def test_info_reports_the_segment(self, runtime):
        response = runtime.handle({"op": "info"})
        assert response["status"] == "ok"
        assert response["schemes"] == ["NR"]
        assert response["segment_bytes"] > 0
        assert response["swaps"] == 0

    def test_swap_reloads_and_counts(self, runtime):
        name = runtime.segment.name
        response = runtime.handle({"op": "_swap", "segment": name})
        assert response["status"] == "ok"
        assert response["schemes"] == ["NR"]
        assert runtime.swaps == 1
        assert runtime.handle({"op": "info"})["swaps"] == 1

    def test_pacing_sleeps_proportionally_to_air_time(self, direct_system, monkeypatch):
        scheme = direct_system.scheme("NR")
        segment = SharedArtifactSegment.publish(
            direct_system.network, {"NR": scheme.artifact()}
        )
        runtime = WorkerRuntime(
            0, config=BASE_CONFIG.experiment_config(), pace_packet_us=5.0
        )
        try:
            runtime.load_segment(segment.name)
            slept = []
            monkeypatch.setattr(time, "sleep", slept.append)
            response = runtime.handle(
                {"op": "query", "method": "NR", "source": 0, "target": 1}
            )
            assert response["status"] == "ok"
            assert slept == [response["access_latency_packets"] * 5.0 / 1e6]
        finally:
            runtime.shutdown()
            segment.unlink()
            segment.close()

    def test_shutdown_is_idempotent(self, runtime):
        runtime.shutdown()
        runtime.shutdown()
        response = runtime.handle({"op": "query", "method": "NR", "source": 0, "target": 1})
        assert response["status"] == "error"
        assert "no segment" in response["error"]


# ----------------------------------------------------------------------
# End to end: daemon over a unix socket
# ----------------------------------------------------------------------
class TestServingEndToEnd:
    def test_ping_and_info(self, server):
        with ServingClient(server.address) as client:
            assert client.ping()["status"] == "ok"
            info = client.info()
        assert info["routing"] == "region"
        assert len(info["workers"]) == 2
        assert all(row["alive"] for row in info["workers"])
        assert info["segment_bytes"] > 0

    def test_served_queries_match_the_direct_system(
        self, server, direct_system, query_pairs
    ):
        with ServingClient(server.address) as client:
            for source, target in query_pairs:
                served = client.query("NR", source, target, tune_in_offset=0)
                reference = _direct_result(direct_system, source, target)
                assert served["distance"] == reference.distance
                assert served["found"] == reference.found
                assert served["tuning_time_packets"] == reference.metrics.tuning_time_packets
                assert (
                    served["access_latency_packets"]
                    == reference.metrics.access_latency_packets
                )

    def test_served_batch_matches_direct_batch(self, server, direct_system, query_pairs):
        with ServingClient(server.address) as client:
            served = client.query_batch("NR", query_pairs, tune_in_offset=0)
        options = direct_system.default_options.replace(tune_in_offset=0)
        run = direct_system.query_batch("NR", query_pairs, options=options)
        assert served["latency"]["count"] == len(query_pairs)
        expected = [
            _direct_result(direct_system, source, target).distance
            for source, target in query_pairs
        ]
        assert served["distances"] == expected
        assert served["latency"]["max"] == max(
            metrics.access_latency_packets for metrics in run.per_query
        )

    def test_served_fleet_matches_direct_signature(self, server, direct_system):
        from repro.experiments import FLEET_SCENARIOS

        with ServingClient(server.address) as client:
            served = client.fleet("NR", scenario="trickle", devices=15, seed=5)
        devices = FLEET_SCENARIOS["trickle"](direct_system.network, 15, seed=5)
        run = direct_system.simulate_fleet("NR", devices, seed=5)
        import hashlib

        expected_digest = hashlib.sha256(repr(run.signature()).encode("utf-8")).hexdigest()
        assert served["devices"] == 15
        assert served["mismatches"] == run.mismatches
        assert served["signature_digest"] == expected_digest

    def test_bad_requests_do_not_kill_workers(self, server):
        with ServingClient(server.address) as client:
            with pytest.raises(ServerError):
                client.query("XYZ", 0, 1)
            with pytest.raises(ServerError):
                client.fleet("NR", scenario="no-such")
            info = client.info()
        assert all(row["alive"] for row in info["workers"])
        assert info["respawns"] == 0

    def test_unknown_op_is_an_error_response(self, server):
        with ServingClient(server.address) as client:
            with pytest.raises(ServerError, match="unknown op"):
                client.call({"op": "frobnicate"})

    def test_load_generator_spreads_work(self, server, query_pairs):
        report = run_load(server.address, query_pairs * 4, concurrency=3)
        assert report.requests == len(query_pairs) * 4
        assert report.errors == 0
        assert report.qps > 0
        assert report.latency_ms["p50"] > 0
        assert sum(report.workers.values()) == report.requests

    def test_crash_is_detected_and_respawned_without_wrong_answers(
        self, server, direct_system, query_pairs
    ):
        with ServingClient(server.address) as client:
            before = client.info()
            client.crash_worker(0)
            deadline = time.time() + 20.0
            while time.time() < deadline:
                info = client.info()
                if info["respawns"] > before["respawns"] and all(
                    row["alive"] for row in info["workers"]
                ):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("crashed worker was not respawned in time")
            # Every worker answers correctly after the respawn (hit both).
            for source, target in query_pairs:
                served = client.query("NR", source, target, tune_in_offset=0)
                reference = _direct_result(direct_system, source, target)
                assert served["distance"] == reference.distance


# ----------------------------------------------------------------------
# TCP transport (the portable fallback when Unix sockets are unavailable)
# ----------------------------------------------------------------------
class TestTcpTransport:
    def test_serves_over_an_ephemeral_tcp_port(self, direct_system, query_pairs):
        config = dataclasses.replace(
            BASE_CONFIG, workers=1, port=0, routing="round_robin"
        )
        handle = ServerHandle.launch(config)
        try:
            kind, host, port = handle.address
            assert kind == "tcp" and port > 0
            with ServingClient(("tcp", host, port)) as client:
                client.ping()
                source, target = query_pairs[0]
                served = client.query("NR", source, target, tune_in_offset=0)
                reference = _direct_result(direct_system, source, target)
                assert served["distance"] == reference.distance
        finally:
            handle.stop()

    def test_unknown_address_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown address kind"):
            ServingClient(("carrier_pigeon", "nowhere"))


# ----------------------------------------------------------------------
# Backpressure (dedicated tiny daemon: one slow worker, queue depth 1)
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_full_queue_answers_busy_with_retry_advice(self, direct_system, query_pairs):
        config = ServeConfig(
            network="milan",
            scale=0.01,
            seed=3,
            regions=8,
            methods=("NR",),
            workers=1,
            max_pending=1,
            retry_after_ms=7.0,
            pace_packet_us=200.0,  # make each query take visible wall time
            routing="round_robin",
        )
        handle = ServerHandle.launch(config)
        try:
            busy_seen = []
            lock = threading.Lock()

            def slam(pairs):
                client = ServingClient(handle.address)
                try:
                    for source, target in pairs:
                        try:
                            client.query("NR", source, target, tune_in_offset=0)
                        except ServerBusy as busy:
                            with lock:
                                busy_seen.append(busy.retry_after_ms)
                finally:
                    client.close()

            threads = [
                threading.Thread(target=slam, args=(query_pairs * 3,))
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert busy_seen, "a saturated one-deep queue never answered busy"
            assert all(advice == 7.0 for advice in busy_seen)
            # Polite clients that honour the advice eventually get through.
            report = run_load(handle.address, query_pairs, concurrency=2)
            assert report.errors == 0
            assert report.requests == len(query_pairs)
        finally:
            handle.stop()

    def test_retry_loop_bounded_under_sustained_backpressure(self, monkeypatch):
        """A persistently saturated server must surface ``ServerBusy``.

        The retry loop backs off exponentially (with jitter) from the
        server's advice and re-raises after ``max_retries`` rejections --
        it must never spin forever on a server that stays busy.
        """

        class AlwaysBusyClient(ServingClient):
            def __init__(self):  # no socket: every call is a rejection
                self.calls = 0

            def call(self, request):
                self.calls += 1
                raise ServerBusy(retry_after_ms=10.0)

        sleeps = []
        monkeypatch.setattr("repro.serving.client.time.sleep", sleeps.append)
        client = AlwaysBusyClient()
        with pytest.raises(ServerBusy):
            client.call_with_retry({"op": "ping"}, max_retries=12)

        # One initial attempt plus max_retries retries, then the re-raise.
        assert client.calls == 13
        assert len(sleeps) == 12
        advised, cap, jitter = 0.010, 0.25, 0.5
        for attempt, delay in enumerate(sleeps):
            base = min(advised * 1.5**attempt, cap)
            assert base * (1.0 - jitter) <= delay <= base * (1.0 + jitter)
        # The backoff actually grows to the cap region, and the jitter
        # actually randomizes (a busy herd must not retry in lockstep).
        assert sleeps[-1] > advised
        assert len(set(sleeps)) > 1


# ----------------------------------------------------------------------
# Refresh (dedicated daemon: the fingerprint changes mid-flight)
# ----------------------------------------------------------------------
class TestRefresh:
    def test_mid_flight_answers_are_old_or_new_never_torn(self, query_pairs):
        config = ServeConfig(
            network="milan",
            scale=0.01,
            seed=3,
            regions=8,
            methods=("NR",),
            workers=2,
            max_pending=16,
        )
        handle = ServerHandle.launch(config)
        reference = AirSystem.from_config(config.experiment_config())
        try:
            old_fingerprint = reference.network.fingerprint()
            edges = list(reference.network.edges())[:4]
            updates = [(e.source, e.target, e.weight * 1.7) for e in edges]

            fingerprints = set()
            errors = []
            stop_flag = threading.Event()

            def background_queries():
                client = ServingClient(handle.address)
                try:
                    while not stop_flag.is_set():
                        for source, target in query_pairs:
                            try:
                                served = client.query(
                                    "NR", source, target, tune_in_offset=0
                                )
                            except ServerBusy:
                                continue
                            fingerprints.add(served["fingerprint"])
                except Exception as exc:  # noqa: BLE001 - report in the test
                    errors.append(exc)
                finally:
                    client.close()

            thread = threading.Thread(target=background_queries)
            thread.start()
            time.sleep(0.2)
            with ServingClient(handle.address) as client:
                outcome = client.refresh(updates)
            time.sleep(0.3)
            stop_flag.set()
            thread.join(timeout=30.0)

            assert not errors, errors
            new_fingerprint = outcome["fingerprint"]
            assert new_fingerprint != old_fingerprint
            assert outcome["workers_swapped"] == 2
            assert outcome["num_changes"] == len(updates)
            # Every answer came off a published cycle: the old one or the
            # new one, never a half-swapped hybrid fingerprint.
            assert fingerprints <= {old_fingerprint, new_fingerprint}
            assert new_fingerprint in fingerprints

            # Post-refresh answers equal a direct system refreshed the same way.
            reference.apply_updates(updates)
            options = reference.default_options.replace(tune_in_offset=0)
            with ServingClient(handle.address) as client:
                for source, target in query_pairs[:5]:
                    served = client.query("NR", source, target, tune_in_offset=0)
                    expected = reference.query("NR", source, target, options=options)
                    assert served["distance"] == expected.distance
                    assert served["fingerprint"] == new_fingerprint
        finally:
            handle.stop()

    def test_double_shutdown_is_a_noop(self):
        config = ServeConfig(
            network="milan", scale=0.01, seed=3, regions=8, methods=("NR",), workers=1
        )
        handle = ServerHandle.launch(config)
        with ServingClient(handle.address) as client:
            assert client.shutdown()["status"] == "ok"
        handle.stop()
        handle.stop()  # second stop: no error, nothing left to do
        assert handle.server.workers == []
