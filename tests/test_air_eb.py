"""Tests for the Elliptic Boundary (EB) scheme (paper Section 4)."""

import pytest

from repro.broadcast.packet import SegmentKind
from repro.network.algorithms.dijkstra import shortest_path


class TestCycleLayout:
    def test_index_copies_interleaved(self, eb_scheme):
        copies = eb_scheme.cycle.segments_of_kind(SegmentKind.INDEX)
        assert len(copies) >= 1
        assert all(segment.name.startswith("eb-index#copy") for segment in copies)

    def test_every_region_has_cross_and_local_segments(self, eb_scheme):
        for region in range(eb_scheme.num_regions):
            assert eb_scheme.cycle.has_segment(f"region-{region}-cross")
            assert eb_scheme.cycle.has_segment(f"region-{region}-local")

    def test_region_data_never_interrupted_by_index(self, eb_scheme):
        """Index copies must fall between regions, not inside one (Section 4.1)."""
        segments = list(eb_scheme.cycle)
        for position, segment in enumerate(segments):
            if segment.name.endswith("-cross"):
                neighbor = segments[position + 1]
                assert neighbor.name == f"region-{segment.region}-local"

    def test_cross_border_plus_local_covers_network(self, eb_scheme, medium_network):
        covered = set()
        for segment in eb_scheme.cycle:
            if segment.kind in (SegmentKind.REGION_CROSS_BORDER, SegmentKind.REGION_LOCAL):
                covered.update(segment.payload["nodes"])
        assert covered == set(medium_network.node_ids())

    def test_needed_index_packets_within_index_segment(self, eb_scheme):
        needed = eb_scheme.needed_index_packets(0, eb_scheme.num_regions - 1)
        index_segment = eb_scheme.cycle.segments_of_kind(SegmentKind.INDEX)[0]
        assert max(needed) < index_segment.num_packets

    def test_splitting_values_count(self, eb_scheme):
        assert len(eb_scheme.splitting_values()) == eb_scheme.num_regions - 1


class TestQueries:
    def test_distances_match_ground_truth(self, eb_scheme, medium_network, query_pairs):
        client = eb_scheme.client()
        for source, target in query_pairs:
            expected = shortest_path(medium_network, source, target).distance
            result = client.query(source, target)
            assert result.distance == pytest.approx(expected), (source, target)

    def test_received_regions_include_endpoints(self, eb_scheme, query_pairs):
        client = eb_scheme.client()
        source, target = query_pairs[0]
        result = client.query(source, target)
        partitioning = eb_scheme.partitioning
        assert partitioning.region_of(source) in result.received_regions
        assert partitioning.region_of(target) in result.received_regions

    def test_received_regions_match_ellipse_rule(self, eb_scheme, query_pairs):
        client = eb_scheme.client()
        source, target = query_pairs[1]
        result = client.query(source, target)
        expected = eb_scheme.precomputation.needed_regions_eb(
            eb_scheme.partitioning.region_of(source),
            eb_scheme.partitioning.region_of(target),
        )
        assert result.received_regions == expected

    def test_tuning_time_below_full_cycle_for_nearby_queries(self, eb_scheme, medium_network):
        """Pruning must pay off for queries whose endpoints are close."""
        partitioning = eb_scheme.partitioning
        region_nodes = partitioning.nodes_in_region(0)
        neighbors = partitioning.region_adjacency()[0]
        other_region = next(iter(neighbors)) if neighbors else 1
        other_nodes = partitioning.nodes_in_region(other_region)
        if not region_nodes or not other_nodes:
            pytest.skip("degenerate partitioning for this seed")
        result = eb_scheme.client().query(region_nodes[0], other_nodes[0])
        assert result.metrics.tuning_time_packets < eb_scheme.cycle.total_packets

    def test_same_region_query_correct(self, eb_scheme, medium_network):
        nodes = eb_scheme.partitioning.nodes_in_region(2)
        if len(nodes) < 2:
            pytest.skip("region too small")
        expected = shortest_path(medium_network, nodes[0], nodes[1]).distance
        result = eb_scheme.client().query(nodes[0], nodes[1])
        assert result.distance == pytest.approx(expected)

    def test_memory_bound_client_matches_distances(self, eb_scheme, medium_network, query_pairs):
        client = eb_scheme.client(memory_bound=True)
        for source, target in query_pairs[:8]:
            expected = shortest_path(medium_network, source, target).distance
            assert client.query(source, target).distance == pytest.approx(expected)

    def test_metrics_populated(self, eb_scheme, query_pairs):
        result = eb_scheme.client().query(*query_pairs[2])
        metrics = result.metrics
        assert metrics.tuning_time_packets > 0
        assert metrics.access_latency_packets >= metrics.tuning_time_packets
        assert metrics.peak_memory_bytes > 0
        assert metrics.extra["needed_regions"] >= 2
