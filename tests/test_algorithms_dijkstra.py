"""Unit tests for Dijkstra's algorithm and path helpers."""

import random

import pytest

from repro.network.algorithms.dijkstra import (
    dijkstra_distances,
    dijkstra_multi_target,
    shortest_path,
    shortest_path_distance,
)
from repro.network.algorithms.paths import (
    INFINITY,
    path_cost,
    reconstruct_path,
    validate_path,
)
from repro.network.graph import RoadNetwork


def diamond_network() -> RoadNetwork:
    """A small diamond with a long direct edge and a shorter two-hop route."""
    network = RoadNetwork()
    for node_id, x, y in [(1, 0, 0), (2, 1, 1), (3, 1, -1), (4, 2, 0)]:
        network.add_node(node_id, x, y)
    network.add_edge(1, 4, 10.0)
    network.add_edge(1, 2, 3.0)
    network.add_edge(2, 4, 3.0)
    network.add_edge(1, 3, 2.0)
    network.add_edge(3, 4, 5.0)
    return network


class TestPointToPoint:
    def test_prefers_cheaper_multi_hop_path(self):
        result = shortest_path(diamond_network(), 1, 4)
        assert result.distance == pytest.approx(6.0)
        assert result.path == [1, 2, 4]

    def test_source_equals_target(self):
        result = shortest_path(diamond_network(), 2, 2)
        assert result.distance == 0.0
        assert result.path == [2]

    def test_unreachable_target(self):
        network = diamond_network()
        network.add_node(99, 5, 5)
        result = shortest_path(network, 1, 99)
        assert result.distance == INFINITY
        assert result.path == []
        assert not result.found

    def test_unknown_nodes_raise(self):
        network = diamond_network()
        with pytest.raises(KeyError):
            shortest_path(network, 123, 1)
        with pytest.raises(KeyError):
            shortest_path(network, 1, 123)

    def test_distance_helper_matches_full_result(self):
        network = diamond_network()
        assert shortest_path_distance(network, 1, 4) == shortest_path(network, 1, 4).distance

    def test_path_is_valid_edge_sequence(self):
        network = diamond_network()
        result = shortest_path(network, 1, 4)
        assert validate_path(network, result.path)
        assert path_cost(network, result.path) == pytest.approx(result.distance)

    def test_respects_edge_direction(self):
        network = diamond_network()
        # 4 has no outgoing edges, so nothing is reachable from it.
        assert shortest_path(network, 4, 1).distance == INFINITY


class TestSingleSource:
    def test_distances_match_point_queries(self, small_network):
        rng = random.Random(2)
        nodes = small_network.node_ids()
        source = nodes[0]
        sssp = dijkstra_distances(small_network, source)
        for target in rng.sample(nodes, 10):
            assert sssp.distance_to(target) == pytest.approx(
                shortest_path(small_network, source, target).distance
            )

    def test_reverse_search_matches_forward_on_reversed_graph(self, small_network):
        nodes = small_network.node_ids()
        source = nodes[3]
        reverse = dijkstra_distances(small_network, source, reverse=True)
        forward_on_reversed = dijkstra_distances(small_network.reversed(), source)
        for node in nodes[:25]:
            assert reverse.distance_to(node) == pytest.approx(
                forward_on_reversed.distance_to(node)
            )

    def test_path_to_reconstructs_valid_paths(self, small_network):
        source = small_network.node_ids()[0]
        result = dijkstra_distances(small_network, source)
        for target in small_network.node_ids()[:20]:
            path = result.path_to(target)
            if result.distance_to(target) != INFINITY and target != source:
                assert path[0] == source and path[-1] == target
                assert validate_path(small_network, path)

    def test_multi_target_settles_all_targets(self, small_network):
        nodes = small_network.node_ids()
        source, targets = nodes[0], set(nodes[5:15])
        result = dijkstra_multi_target(small_network, source, targets)
        full = dijkstra_distances(small_network, source)
        for target in targets:
            assert result.distance_to(target) == pytest.approx(full.distance_to(target))

    def test_multi_target_early_stop_settles_fewer_nodes(self, small_network):
        nodes = small_network.node_ids()
        source = nodes[0]
        nearby_target = min(
            (n for n in nodes if n != source),
            key=lambda n: small_network.euclidean_distance(source, n),
        )
        limited = dijkstra_multi_target(small_network, source, {nearby_target})
        full = dijkstra_distances(small_network, source)
        assert limited.settled < full.settled


class TestPathHelpers:
    def test_reconstruct_path_missing_target(self):
        assert reconstruct_path({1: None}, 1, 2) == []

    def test_reconstruct_path_detects_cycles(self):
        with pytest.raises(ValueError):
            reconstruct_path({1: 2, 2: 1}, 3, 1)

    def test_path_cost_of_trivial_paths(self, small_network):
        assert path_cost(small_network, []) == 0.0
        assert path_cost(small_network, [small_network.node_ids()[0]]) == 0.0
