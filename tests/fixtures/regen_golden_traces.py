#!/usr/bin/env python
"""Regenerate the golden-trace fixtures under ``tests/fixtures/golden_traces/``.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/regen_golden_traces.py

Only regenerate when a behaviour change is *intended*: the fixtures exist to
catch unintended changes to what a client receives or answers, so a diff
here should be reviewed op by op (the rendering is one JSON object per
scheme with the full packet stream; see ``tests/test_golden_traces.py`` for
the exact schema).
"""

from __future__ import annotations

import pathlib
import sys

# The canonical payload builder lives next to the tests so the fixtures and
# the assertions can never drift apart.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from test_golden_traces import (  # noqa: E402
    FIXTURE_DIR,
    GOLDEN_PARAMS,
    build_golden_payload,
    fixture_path,
    render,
)


def main() -> int:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for scheme_name in sorted(GOLDEN_PARAMS):
        path = fixture_path(scheme_name)
        path.write_text(render(build_golden_payload(scheme_name)), encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
