"""Tests for Section 6.1 memory-bound processing (super-edge compression)."""

import pytest

from repro.air.memory_bound import (
    SuperEdgeGraph,
    compress_region,
    shortest_path_on_overlay,
)
from repro.air.records import DEFAULT_LAYOUT
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.algorithms.paths import INFINITY, path_cost, validate_path


class TestSuperEdgeGraph:
    def test_add_edge_tracks_size(self):
        overlay = SuperEdgeGraph()
        overlay.add_edge(1, 2, 3.0, DEFAULT_LAYOUT)
        assert overlay.size_bytes == 12
        assert overlay.adjacency[1] == [(2, 3.0)]

    def test_add_super_edge_stores_expansion(self):
        overlay = SuperEdgeGraph()
        overlay.add_super_edge(1, 4, 6.0, [1, 2, 3, 4], DEFAULT_LAYOUT)
        assert overlay.expansions[(1, 4)] == [1, 2, 3, 4]
        assert overlay.size_bytes == 12 + 4 * 4

    def test_expand_path_replaces_super_edges(self):
        overlay = SuperEdgeGraph()
        overlay.add_super_edge(1, 4, 6.0, [1, 2, 3, 4], DEFAULT_LAYOUT)
        overlay.add_edge(4, 5, 1.0, DEFAULT_LAYOUT)
        assert overlay.expand_path([1, 4, 5]) == [1, 2, 3, 4, 5]

    def test_expand_empty_path(self):
        assert SuperEdgeGraph().expand_path([]) == []


class TestCompressRegion:
    def test_super_edges_connect_terminals(self, grid_network):
        """On a grid quadrant (internally connected) every border pair gets a
        super-edge, and each expansion starts/ends at its endpoints."""
        from repro.partitioning.base import Partitioning
        from repro.partitioning.grid import GridPartitioner

        partitioning = Partitioning(
            grid_network, GridPartitioner(grid_network.bounding_box(), 2, 2)
        )
        overlay = SuperEdgeGraph()
        nodes = partitioning.nodes_in_region(0)
        borders = partitioning.border_nodes(0)
        added = compress_region(
            overlay, grid_network, nodes, borders, extra_terminals=(), layout=DEFAULT_LAYOUT
        )
        assert added == len(borders) * (len(borders) - 1)
        for (u, v), path in overlay.expansions.items():
            assert path[0] == u and path[-1] == v

    def test_super_edge_weights_match_region_internal_paths(self, small_network, small_partitioning):
        overlay = SuperEdgeGraph()
        region = max(
            range(small_partitioning.num_regions),
            key=lambda r: len(small_partitioning.nodes_in_region(r)),
        )
        nodes = set(small_partitioning.nodes_in_region(region))
        borders = small_partitioning.border_nodes(region)
        compress_region(
            overlay, small_network, nodes, borders, extra_terminals=(), layout=DEFAULT_LAYOUT
        )
        for (u, v), path in overlay.expansions.items():
            assert set(path) <= nodes
            assert validate_path(small_network, path)
            weight = next(w for t, w in overlay.adjacency[u] if t == v)
            assert weight == pytest.approx(path_cost(small_network, path))


class TestOverlaySearch:
    def test_unknown_source_returns_infinity(self):
        distance, path, _ = shortest_path_on_overlay(SuperEdgeGraph(), 1, 2)
        assert distance == INFINITY
        assert path == []

    def test_overlay_result_connects_endpoints_with_exact_distance(
        self, eb_scheme, medium_network, query_pairs
    ):
        client = eb_scheme.client(memory_bound=True)
        source, target = query_pairs[0]
        result = client.query(source, target)
        expected = shortest_path(medium_network, source, target).distance
        assert result.path[0] == source
        assert result.path[-1] == target
        assert result.distance == pytest.approx(expected)

    def test_expansions_kept_for_terminal_regions(self, nr_scheme, medium_network):
        """Inside the source region the returned path is fully detailed."""
        partitioning = nr_scheme.partitioning
        nodes = partitioning.nodes_in_region(1)
        if len(nodes) < 2:
            pytest.skip("region too small")
        source, target = nodes[0], nodes[-1]
        result = nr_scheme.client(memory_bound=True).query(source, target)
        same_region_prefix = [
            node for node in result.path if partitioning.region_of(node) == 1
        ]
        # Consecutive same-region path nodes must be joined by real edges.
        for a, b in zip(same_region_prefix, same_region_prefix[1:]):
            if partitioning.region_of(a) == partitioning.region_of(b) == 1:
                pass  # detailed check below on the full prefix
        prefix = result.path[: len(same_region_prefix)]
        if len(prefix) >= 2 and all(partitioning.region_of(n) == 1 for n in prefix):
            assert validate_path(medium_network, prefix)


class TestMemorySavings:
    @pytest.fixture(scope="class")
    def coarse_nr_scheme(self, medium_network):
        """Fewer, larger regions: the regime where super-edge compression pays
        (the paper's regions hold ~900 nodes each)."""
        from repro.air import NextRegionScheme

        return NextRegionScheme(medium_network, num_regions=4)

    def test_memory_bound_reduces_peak_memory_on_average(self, coarse_nr_scheme, query_pairs):
        """The paper reports roughly 35% lower peak memory (Figure 13a)."""
        plain = coarse_nr_scheme.client(memory_bound=False)
        bound = coarse_nr_scheme.client(memory_bound=True)
        plain_total = 0
        bound_total = 0
        for source, target in query_pairs[:10]:
            plain_total += plain.query(source, target).metrics.peak_memory_bytes
            bound_total += bound.query(source, target).metrics.peak_memory_bytes
        assert bound_total < plain_total

    def test_memory_bound_costs_more_cpu(self, nr_scheme, query_pairs):
        """Figure 13b: the saving is paid for with client-side computation."""
        plain = nr_scheme.client(memory_bound=False)
        bound = nr_scheme.client(memory_bound=True)
        plain_cpu = sum(plain.query(s, t).metrics.cpu_seconds for s, t in query_pairs[:8])
        bound_cpu = sum(bound.query(s, t).metrics.cpu_seconds for s, t in query_pairs[:8])
        assert bound_cpu > 0.0
        assert plain_cpu > 0.0
