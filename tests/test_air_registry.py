"""Tests for the scheme registry (repro.air.registry)."""

from dataclasses import dataclass, FrozenInstanceError

import pytest

from repro import air
from repro.air import registry
from repro.air.base import AirIndexScheme
from repro.experiments import ExperimentConfig


class TestRegistryContents:
    def test_all_paper_methods_registered(self):
        assert set(air.available_schemes()) == {"DJ", "NR", "EB", "LD", "AF", "SPQ", "HiTi"}

    def test_comparison_subset(self):
        assert set(air.comparison_schemes()) == {"DJ", "NR", "EB", "LD", "AF"}
        assert "SPQ" not in air.comparison_schemes()
        assert "HiTi" not in air.comparison_schemes()

    def test_short_names_match_registry_keys(self):
        for name in air.available_schemes():
            assert air.get_scheme(name).cls.short_name == name

    def test_registered_classes_are_schemes(self):
        for name in air.available_schemes():
            assert issubclass(air.get_scheme(name).cls, AirIndexScheme)

    def test_back_compat_scheme_registry_view(self):
        assert air.SCHEME_REGISTRY["NR"] is air.NextRegionScheme
        assert set(air.SCHEME_REGISTRY) == set(air.available_schemes())


class TestLookup:
    def test_case_insensitive_canonicalization(self):
        assert air.canonical_name("nr") == "NR"
        assert air.canonical_name("hiti") == "HiTi"
        assert air.canonical_name("HITI") == "HiTi"

    def test_unknown_scheme_raises_with_alternatives(self):
        with pytest.raises(ValueError, match="unknown scheme 'XYZ'"):
            air.canonical_name("XYZ")
        with pytest.raises(ValueError, match="available:"):
            air.get_scheme("nope")

    def test_defaults_reflect_param_dataclasses(self):
        assert air.scheme_defaults("NR") == {"num_regions": 32}
        assert air.scheme_defaults("EB") == {"num_regions": 32, "square_packing": True}
        assert air.scheme_defaults("LD") == {"num_landmarks": 4}
        assert air.scheme_defaults("DJ") == {}


class TestCreate:
    def test_create_with_parameters(self, medium_network):
        scheme = air.create("NR", medium_network, num_regions=8)
        assert scheme.short_name == "NR"
        assert scheme.num_regions == 8

    def test_create_uses_defaults(self, medium_network):
        scheme = air.create("LD", medium_network)
        assert scheme.num_landmarks == 4

    def test_create_case_insensitive(self, medium_network):
        assert air.create("dj", medium_network).short_name == "DJ"

    def test_unknown_parameter_rejected(self, medium_network):
        with pytest.raises(ValueError, match="unknown parameter"):
            air.create("NR", medium_network, bogus=3)

    def test_unknown_scheme_rejected(self, medium_network):
        with pytest.raises(ValueError):
            air.create("XYZ", medium_network)

    def test_params_from_config(self):
        config = ExperimentConfig(
            eb_nr_regions=48, arcflag_regions=12, hiti_regions=6, num_landmarks=3
        )
        assert air.params_from_config("NR", config) == {"num_regions": 48}
        assert air.params_from_config("EB", config) == {"num_regions": 48}
        assert air.params_from_config("AF", config) == {"num_regions": 12}
        assert air.params_from_config("HiTi", config) == {"num_regions": 6}
        assert air.params_from_config("LD", config) == {"num_landmarks": 3}
        assert air.params_from_config("DJ", config) == {}


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @registry.register_scheme("NR")
            class AnotherNR:  # pragma: no cover - never constructed
                short_name = "NR"

    def test_reregistering_same_class_is_idempotent(self):
        cls = air.get_scheme("NR").cls
        assert registry.register_scheme("NR", params=air.NRParams)(cls) is cls
        # The original metadata (config_map included) survives the no-op.
        assert air.get_scheme("NR").config_map == {"num_regions": "eb_nr_regions"}

    def test_module_reload_replaces_the_entry(self):
        """Reloading a scheme module re-runs the decorator with a new class."""
        import importlib

        from repro.air import nr as nr_module

        original = air.get_scheme("NR").cls
        try:
            importlib.reload(nr_module)
            reloaded = air.get_scheme("NR").cls
            assert reloaded is not original
            assert reloaded.__qualname__ == original.__qualname__
            assert air.get_scheme("NR").config_map == {"num_regions": "eb_nr_regions"}
        finally:
            # Restore the original class so session-scoped fixtures built
            # from it keep matching the registry for later tests.
            registry._REGISTRY["NR"] = registry.SchemeInfo(
                name="NR",
                cls=original,
                params=air.NRParams,
                description=air.get_scheme("NR").description,
                config_map=dict(air.get_scheme("NR").config_map),
            )

    def test_non_dataclass_params_rejected(self):
        with pytest.raises(TypeError, match="must be a dataclass"):
            registry.register_scheme("ZZ", params=dict)

    def test_params_dataclasses_are_frozen(self):
        params = air.NRParams(num_regions=8)
        with pytest.raises(FrozenInstanceError):
            params.num_regions = 9

    def test_new_scheme_registration_roundtrip(self, medium_network):
        """A scheme registered at runtime is immediately constructible."""

        @dataclass(frozen=True)
        class EchoParams:
            knob: int = 1

        @registry.register_scheme("TestEcho", params=EchoParams, comparison=False)
        class EchoScheme:
            short_name = "TestEcho"

            def __init__(self, network, knob=1):
                self.network = network
                self.knob = knob

        try:
            assert "TestEcho" in air.available_schemes()
            assert "TestEcho" not in air.comparison_schemes()
            built = air.create("testecho", medium_network, knob=5)
            assert built.knob == 5
        finally:
            registry._REGISTRY.pop("TestEcho", None)
            registry._ALIASES.pop("testecho", None)
