"""Tests for the Next Region (NR) scheme (paper Section 5)."""

import pytest

from repro.broadcast.packet import SegmentKind
from repro.network.algorithms.dijkstra import shortest_path


class TestIndexSemantics:
    def test_local_index_before_every_region(self, nr_scheme):
        segments = list(nr_scheme.cycle)
        for position, segment in enumerate(segments):
            if segment.kind == SegmentKind.LOCAL_INDEX:
                following = segments[position + 1]
                assert following.kind == SegmentKind.REGION_CROSS_BORDER
                assert following.region == segment.region

    def test_next_region_pointer_is_needed_and_not_behind(self, nr_scheme):
        n = nr_scheme.num_regions
        for index_region in range(0, n, 3):
            for i in range(0, n, 5):
                for j in range(0, n, 5):
                    pointer = nr_scheme.next_region_after(index_region, i, j)
                    needed = nr_scheme.needed_regions(i, j)
                    assert pointer in needed
                    # No needed region lies strictly between the index region
                    # and the pointer in cyclic order.
                    gap = (pointer - index_region) % n
                    for other in needed:
                        assert (other - index_region) % n >= 0
                        assert not ((other - index_region) % n < gap)

    def test_pointer_can_be_the_index_region_itself(self, nr_scheme):
        """Rnxt could be Rm itself (paper Section 5.1)."""
        found = False
        n = nr_scheme.num_regions
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                if nr_scheme.next_region_after(i, i, j) == i:
                    found = True
                    break
            if found:
                break
        assert found

    def test_cell_packet_offset_within_segment(self, nr_scheme):
        max_offset = max(
            nr_scheme.cell_packet_offset(i, j)
            for i in range(nr_scheme.num_regions)
            for j in range(nr_scheme.num_regions)
        )
        assert max_offset < nr_scheme.local_index_packets

    def test_no_global_index_in_cycle(self, nr_scheme):
        assert nr_scheme.cycle.segments_of_kind(SegmentKind.INDEX) == []


class TestQueries:
    def test_distances_match_ground_truth(self, nr_scheme, medium_network, query_pairs):
        client = nr_scheme.client()
        for source, target in query_pairs:
            expected = shortest_path(medium_network, source, target).distance
            result = client.query(source, target)
            assert result.distance == pytest.approx(expected), (source, target)

    def test_received_regions_subset_of_needed(self, nr_scheme, query_pairs):
        client = nr_scheme.client()
        for source, target in query_pairs[:6]:
            result = client.query(source, target)
            needed = set(
                nr_scheme.needed_regions(
                    nr_scheme.partitioning.region_of(source),
                    nr_scheme.partitioning.region_of(target),
                )
            )
            assert set(result.received_regions) == needed

    def test_nr_receives_no_more_regions_than_eb(self, nr_scheme, eb_scheme, query_pairs):
        """Figure 10's explanation: NR's needed set is a subset of EB's."""
        nr_client = nr_scheme.client()
        eb_client = eb_scheme.client()
        for source, target in query_pairs[:6]:
            nr_regions = len(nr_client.query(source, target).received_regions)
            eb_regions = len(eb_client.query(source, target).received_regions)
            assert nr_regions <= eb_regions

    def test_memory_bound_client_matches_distances(self, nr_scheme, medium_network, query_pairs):
        client = nr_scheme.client(memory_bound=True)
        for source, target in query_pairs[:8]:
            expected = shortest_path(medium_network, source, target).distance
            assert client.query(source, target).distance == pytest.approx(expected)

    def test_same_region_query_correct(self, nr_scheme, medium_network):
        nodes = nr_scheme.partitioning.nodes_in_region(5)
        if len(nodes) < 2:
            pytest.skip("region too small")
        expected = shortest_path(medium_network, nodes[0], nodes[-1]).distance
        result = nr_scheme.client().query(nodes[0], nodes[-1])
        assert result.distance == pytest.approx(expected)

    def test_metrics_populated(self, nr_scheme, query_pairs):
        result = nr_scheme.client().query(*query_pairs[3])
        metrics = result.metrics
        assert metrics.tuning_time_packets > 0
        assert metrics.access_latency_packets >= metrics.tuning_time_packets
        assert metrics.peak_memory_bytes > 0
        assert metrics.cpu_seconds >= 0.0
