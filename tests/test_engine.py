"""Tests for the engine layer: AirSystem facade, cycle cache, batching."""

import warnings

import pytest

from repro.air import ClientOptions
from repro.engine import AirSystem, MethodRun
from repro.experiments import (
    ExperimentConfig,
    QueryWorkload,
    run_workload,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        network="germany",
        scale=0.01,
        seed=3,
        num_queries=6,
        eb_nr_regions=8,
        arcflag_regions=8,
        hiti_regions=8,
        num_landmarks=2,
    )


@pytest.fixture(scope="module")
def system(medium_network, config):
    return AirSystem(medium_network, config=config)


@pytest.fixture(scope="module")
def workload50(medium_network):
    """The acceptance-criteria workload: 50 queries."""
    return QueryWorkload(medium_network, num_queries=50, seed=17)


def _deterministic_fields(metrics):
    """Every per-query metric except the wall-clock CPU measurement."""
    return (
        metrics.tuning_time_packets,
        metrics.access_latency_packets,
        metrics.peak_memory_bytes,
        metrics.lost_packets,
    )


class TestCycleCache:
    def test_same_scheme_and_params_build_once(self, system):
        system.clear_cache()
        first = system.scheme("NR")
        second = system.scheme("NR")
        assert first is second
        info = system.cache_info()
        assert info.misses == 1
        assert info.hits == 1
        assert info.entries == 1

    def test_explicit_params_matching_config_defaults_hit(self, system, config):
        system.clear_cache()
        implied = system.scheme("NR")
        explicit = system.scheme("NR", num_regions=config.eb_nr_regions)
        assert implied is explicit
        assert system.cache_info().misses == 1

    def test_different_params_are_different_entries(self, system, config):
        system.clear_cache()
        default = system.scheme("NR")
        halved = system.scheme("NR", num_regions=config.eb_nr_regions // 2)
        assert default is not halved
        assert system.cache_info().entries == 2

    def test_case_insensitive_names_share_an_entry(self, system):
        system.clear_cache()
        assert system.scheme("nr") is system.scheme("NR")
        assert system.cache_info().misses == 1

    def test_cached_schemes_have_built_cycles(self, system):
        scheme = system.scheme("DJ")
        assert scheme._cycle is not None

    def test_workload_over_all_methods_builds_each_once(self, system, workload50):
        system.clear_cache()
        queries = list(workload50)[:5]
        for _ in range(3):
            for method in ("NR", "DJ"):
                run = system.query_batch(method, queries)
                assert run.mismatches == 0
        info = system.cache_info()
        assert info.misses == 2
        assert info.entries == 2

    def test_identical_network_copy_hits_the_cache_key(self, medium_network, config):
        """The cache key uses the structural fingerprint, not object identity."""
        assert medium_network.copy().fingerprint() == medium_network.fingerprint()

    def test_clear_cache_resets_counters(self, system):
        system.scheme("NR")
        system.clear_cache()
        info = system.cache_info()
        assert (info.hits, info.misses, info.entries) == (0, 0, 0)


class TestQueryBatchEquivalence:
    @pytest.mark.parametrize("method", ["NR", "EB", "DJ"])
    def test_batch_matches_sequential_run_workload(self, system, config, workload50, method):
        """The acceptance criterion: 50 batched queries == per-query loop."""
        batched = system.query_batch(method, workload50)
        scheme = system.scheme(method)
        sequential = run_workload(scheme, workload50, config)
        assert len(batched.per_query) == len(sequential.per_query) == 50
        assert batched.mismatches == sequential.mismatches == 0
        for ours, theirs in zip(batched.per_query, sequential.per_query):
            assert _deterministic_fields(ours) == _deterministic_fields(theirs)

    def test_batch_matches_manual_client_loop(self, system, workload50):
        """query_batch == hand-rolled client.query loop over one channel."""
        batched = system.query_batch("NR", workload50)
        scheme = system.scheme("NR")
        channel = scheme.channel()
        client = scheme.client()
        for query, metrics in zip(workload50, batched.per_query):
            result = client.query(query.source, query.target, channel=channel)
            assert abs(result.distance - query.true_distance) <= 1e-6 * max(
                1.0, query.true_distance
            )
            assert _deterministic_fields(result.metrics) == _deterministic_fields(metrics)

    def test_concurrency_does_not_change_results(self, system, workload50):
        sequential = system.query_batch("NR", workload50)
        threaded = system.query_batch("NR", workload50, concurrency=4)
        chunked = system.query_batch("NR", workload50, concurrency=2, chunk_size=3)
        for runs in (threaded, chunked):
            assert runs.mismatches == sequential.mismatches
            assert [
                _deterministic_fields(m) for m in runs.per_query
            ] == [_deterministic_fields(m) for m in sequential.per_query]

    def test_lossy_batch_stays_exact_and_deterministic(self, system, workload50):
        queries = list(workload50)[:10]
        first = system.query_batch("NR", queries, loss_rate=0.05, loss_seed=9)
        second = system.query_batch("NR", queries, loss_rate=0.05, loss_seed=9)
        assert first.mismatches == second.mismatches == 0
        assert [m.lost_packets for m in first.per_query] == [
            m.lost_packets for m in second.per_query
        ]
        assert sum(m.lost_packets for m in first.per_query) > 0

    def test_plain_pairs_are_accepted(self, system, workload50):
        pairs = [(q.source, q.target) for q in list(workload50)[:5]]
        run = system.query_batch("DJ", pairs)
        assert len(run.per_query) == 5
        assert run.mismatches == 0  # no ground truth -> nothing to mismatch


class TestSystemSurface:
    def test_compare_returns_method_runs(self, system, workload50):
        queries = list(workload50)[:5]
        runs = system.compare(["NR", "DJ"], queries)
        assert set(runs) == {"NR", "DJ"}
        for run in runs.values():
            assert isinstance(run, MethodRun)
            assert run.mismatches == 0

    def test_compare_defaults_to_comparison_schemes(self, system, workload50):
        runs = system.compare(workload=list(workload50)[:2])
        assert set(runs) == {"DJ", "NR", "EB", "LD", "AF"}

    def test_channel_cache_keys_on_resolved_params(self, system, config):
        """Equivalent param spellings share one channel (one session sequence)."""
        implied = system.channel("NR")
        explicit = system.channel("NR", num_regions=config.eb_nr_regions)
        assert implied is explicit

    def test_single_query_advances_sessions(self, system, medium_network):
        nodes = medium_network.node_ids()
        first = system.query("NR", nodes[0], nodes[-1])
        second = system.query("NR", nodes[0], nodes[-1])
        assert first.found and second.found
        assert first.distance == second.distance
        # The memoized channel advances its session count, so consecutive
        # queries tune in at different cycle offsets (as in the paper).
        latencies = {
            first.metrics.access_latency_packets,
            second.metrics.access_latency_packets,
            system.query("NR", nodes[0], nodes[-1]).metrics.access_latency_packets,
        }
        assert len(latencies) > 1

    def test_from_config_builds_the_configured_network(self, config):
        built = AirSystem.from_config(config)
        assert built.network.name == "germany"
        assert built.default_options.device is config.device

    def test_memory_bound_option_threads_through(self, system, workload50):
        queries = list(workload50)[:15]
        plain = system.query_batch("NR", queries)
        bound = system.query_batch("NR", queries, memory_bound=True)
        assert bound.mismatches == 0
        # Section 6.1 compression lowers the average working set (Figure 13).
        assert bound.mean.peak_memory_bytes < plain.mean.peak_memory_bytes
        assert bound.mean.cpu_seconds > 0.0

    def test_memory_bound_rejected_for_full_cycle_schemes(self, system):
        with pytest.raises(ValueError, match="memory-bound"):
            system.client("DJ", ClientOptions(memory_bound=True))


class TestDeprecationShims:
    def test_build_scheme_still_works_but_warns(self, medium_network, config):
        from repro.experiments import build_scheme

        with pytest.warns(DeprecationWarning, match="build_scheme is deprecated"):
            scheme = build_scheme("NR", medium_network, config)
        assert scheme.short_name == "NR"
        assert scheme.num_regions == config.eb_nr_regions

    def test_build_scheme_unknown_method_still_valueerrors(self, medium_network, config):
        from repro.experiments import build_scheme

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError):
                build_scheme("XYZ", medium_network, config)

    def test_compare_methods_still_works_but_warns(self, medium_network, config, workload50):
        from repro.experiments import compare_methods

        with pytest.warns(DeprecationWarning, match="compare_methods is deprecated"):
            runs = compare_methods(["DJ"], medium_network, list(workload50)[:2], config)
        assert set(runs) == {"DJ"}
        assert runs["DJ"].mismatches == 0

    def test_compare_methods_keys_by_caller_spelling(self, medium_network, config, workload50):
        """The old function keyed results by the method strings as given."""
        from repro.experiments import compare_methods

        with pytest.warns(DeprecationWarning):
            runs = compare_methods(["nr"], medium_network, list(workload50)[:2], config)
        assert set(runs) == {"nr"}
        assert runs["nr"].method == "NR"

    def test_method_constants_resolve_through_registry(self):
        with pytest.warns(DeprecationWarning, match="COMPARISON_METHODS"):
            from repro.experiments import COMPARISON_METHODS  # noqa: F401 - shim

            assert set(COMPARISON_METHODS) == {"DJ", "NR", "EB", "LD", "AF"}
        with pytest.warns(DeprecationWarning, match="ALL_METHODS"):
            from repro.experiments import runner

            assert set(runner.ALL_METHODS) == {
                "DJ", "NR", "EB", "LD", "AF", "SPQ", "HiTi",
            }


class TestConfigValidation:
    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError, match="unknown network"):
            ExperimentConfig(network="atlantis")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scale": 0.0},
            {"scale": -1.0},
            {"num_queries": 0},
            {"eb_nr_regions": 0},
            {"arcflag_regions": -4},
            {"hiti_regions": 0},
            {"num_landmarks": 0},
            {"loss_rates": [0.5, 1.5]},
            {"finetune_settings": [16, 0]},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_valid_config_accepted(self):
        config = ExperimentConfig(network="milan", scale=0.5, num_queries=1)
        assert config.network == "milan"
