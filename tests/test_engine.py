"""Tests for the engine layer: AirSystem facade, cycle cache, batching."""

import warnings

import pytest

from repro.air import ClientOptions
from repro.engine import AirSystem, MethodRun
from repro.experiments import (
    ExperimentConfig,
    QueryWorkload,
    run_workload,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        network="germany",
        scale=0.01,
        seed=3,
        num_queries=6,
        eb_nr_regions=8,
        arcflag_regions=8,
        hiti_regions=8,
        num_landmarks=2,
    )


@pytest.fixture(scope="module")
def system(medium_network, config):
    return AirSystem(medium_network, config=config)


@pytest.fixture(scope="module")
def workload50(medium_network):
    """The acceptance-criteria workload: 50 queries."""
    return QueryWorkload(medium_network, num_queries=50, seed=17)


def _deterministic_fields(metrics):
    """Every per-query metric except the wall-clock CPU measurement."""
    return (
        metrics.tuning_time_packets,
        metrics.access_latency_packets,
        metrics.peak_memory_bytes,
        metrics.lost_packets,
    )


class TestCycleCache:
    def test_same_scheme_and_params_build_once(self, system):
        system.clear_cache()
        first = system.scheme("NR")
        second = system.scheme("NR")
        assert first is second
        info = system.cache_info()
        assert info.misses == 1
        assert info.hits == 1
        assert info.entries == 1

    def test_explicit_params_matching_config_defaults_hit(self, system, config):
        system.clear_cache()
        implied = system.scheme("NR")
        explicit = system.scheme("NR", num_regions=config.eb_nr_regions)
        assert implied is explicit
        assert system.cache_info().misses == 1

    def test_different_params_are_different_entries(self, system, config):
        system.clear_cache()
        default = system.scheme("NR")
        halved = system.scheme("NR", num_regions=config.eb_nr_regions // 2)
        assert default is not halved
        assert system.cache_info().entries == 2

    def test_case_insensitive_names_share_an_entry(self, system):
        system.clear_cache()
        assert system.scheme("nr") is system.scheme("NR")
        assert system.cache_info().misses == 1

    def test_cached_schemes_have_built_cycles(self, system):
        scheme = system.scheme("DJ")
        assert scheme._cycle is not None

    def test_workload_over_all_methods_builds_each_once(self, system, workload50):
        system.clear_cache()
        queries = list(workload50)[:5]
        for _ in range(3):
            for method in ("NR", "DJ"):
                run = system.query_batch(method, queries)
                assert run.mismatches == 0
        info = system.cache_info()
        assert info.misses == 2
        assert info.entries == 2

    def test_identical_network_copy_hits_the_cache_key(self, medium_network, config):
        """The cache key uses the structural fingerprint, not object identity."""
        assert medium_network.copy().fingerprint() == medium_network.fingerprint()

    def test_clear_cache_resets_counters(self, system):
        system.scheme("NR")
        system.clear_cache()
        info = system.cache_info()
        assert (info.hits, info.misses, info.entries) == (0, 0, 0)


class TestCycleCacheInvalidation:
    """Mutating the network must invalidate cached cycles, not serve stale ones."""

    @pytest.fixture()
    def mutable_system(self, medium_network, config):
        # A private copy: these tests mutate the network in place.
        return AirSystem(medium_network.copy(), config=config)

    def test_add_edge_changes_fingerprint_and_rebuilds(self, mutable_system):
        system = mutable_system
        network = system.network
        before = network.fingerprint()
        stale = system.scheme("NR")
        nodes = network.node_ids()
        network.add_edge(nodes[0], nodes[-1], 123.0)
        assert network.fingerprint() != before
        rebuilt = system.scheme("NR")
        assert rebuilt is not stale
        assert system.cache_info().misses == 2

    def test_remove_edge_changes_fingerprint_and_rebuilds(self, mutable_system):
        system = mutable_system
        network = system.network
        edge = next(iter(network.edges()))
        stale = system.scheme("DJ")
        before = network.fingerprint()
        network.remove_edge(edge.source, edge.target)
        assert network.fingerprint() != before
        assert system.scheme("DJ") is not stale

    def test_reverting_a_mutation_restores_the_cached_entry(self, mutable_system):
        system = mutable_system
        network = system.network
        original = system.scheme("NR")
        nodes = network.node_ids()
        network.add_edge(nodes[0], nodes[-1], 99.0)
        mutated = system.scheme("NR")
        network.remove_edge(nodes[0], nodes[-1])
        # Same structure, same fingerprint: the original entry hits again.
        assert system.scheme("NR") is original
        assert system.scheme("NR") is not mutated

    def test_channels_are_not_served_stale_either(self, mutable_system):
        system = mutable_system
        network = system.network
        stale_channel = system.channel("NR")
        nodes = network.node_ids()
        network.add_edge(nodes[1], nodes[-2], 77.0)
        fresh_channel = system.channel("NR")
        assert fresh_channel is not stale_channel
        assert fresh_channel.cycle is system.scheme("NR").cycle

    def test_fingerprint_is_memoized_while_unchanged(self, medium_network):
        network = medium_network.copy()
        assert network.fingerprint() is network.fingerprint()

    def test_prune_cache_drops_superseded_structures_only(self, mutable_system):
        system = mutable_system
        network = system.network
        system.scheme("NR")
        system.channel("NR")
        nodes = network.node_ids()
        network.add_edge(nodes[0], nodes[-1], 42.0)
        current = system.scheme("NR")
        system.channel("NR")
        dropped = system.prune_cache()
        assert dropped == 2  # one stale scheme entry, one stale channel
        assert system.cache_info().entries == 1
        # The entry for the current structure survives and still hits.
        assert system.scheme("NR") is current
        assert system.prune_cache() == 0


class TestQueryBatchEquivalence:
    @pytest.mark.parametrize("method", ["NR", "EB", "DJ"])
    def test_batch_matches_sequential_run_workload(self, system, config, workload50, method):
        """The acceptance criterion: 50 batched queries == per-query loop."""
        batched = system.query_batch(method, workload50)
        scheme = system.scheme(method)
        sequential = run_workload(scheme, workload50, config)
        assert len(batched.per_query) == len(sequential.per_query) == 50
        assert batched.mismatches == sequential.mismatches == 0
        for ours, theirs in zip(batched.per_query, sequential.per_query):
            assert _deterministic_fields(ours) == _deterministic_fields(theirs)

    def test_batch_matches_manual_client_loop(self, system, workload50):
        """query_batch == hand-rolled client.query loop over one channel."""
        batched = system.query_batch("NR", workload50)
        scheme = system.scheme("NR")
        channel = scheme.channel()
        client = scheme.client()
        for query, metrics in zip(workload50, batched.per_query):
            result = client.query(query.source, query.target, channel=channel)
            assert abs(result.distance - query.true_distance) <= 1e-6 * max(
                1.0, query.true_distance
            )
            assert _deterministic_fields(result.metrics) == _deterministic_fields(metrics)

    def test_concurrency_does_not_change_results(self, system, workload50):
        sequential = system.query_batch("NR", workload50)
        threaded = system.query_batch("NR", workload50, concurrency=4)
        chunked = system.query_batch("NR", workload50, concurrency=2, chunk_size=3)
        for runs in (threaded, chunked):
            assert runs.mismatches == sequential.mismatches
            assert [
                _deterministic_fields(m) for m in runs.per_query
            ] == [_deterministic_fields(m) for m in sequential.per_query]

    def test_lossy_batch_stays_exact_and_deterministic(self, system, workload50):
        queries = list(workload50)[:10]
        first = system.query_batch("NR", queries, loss_rate=0.05, loss_seed=9)
        second = system.query_batch("NR", queries, loss_rate=0.05, loss_seed=9)
        assert first.mismatches == second.mismatches == 0
        assert [m.lost_packets for m in first.per_query] == [
            m.lost_packets for m in second.per_query
        ]
        assert sum(m.lost_packets for m in first.per_query) > 0

    def test_plain_pairs_are_accepted(self, system, workload50):
        pairs = [(q.source, q.target) for q in list(workload50)[:5]]
        run = system.query_batch("DJ", pairs)
        assert len(run.per_query) == 5
        assert run.mismatches == 0  # no ground truth -> nothing to mismatch

    def test_empty_workload_with_concurrency_never_spins_up_a_pool(
        self, system, monkeypatch
    ):
        import repro.concurrency

        def forbidden(*args, **kwargs):
            raise AssertionError("thread pool created for an empty workload")

        monkeypatch.setattr(repro.concurrency, "ThreadPoolExecutor", forbidden)
        run = system.query_batch("NR", [], concurrency=8)
        assert run.per_query == []
        assert run.mismatches == 0

    @pytest.mark.parametrize("concurrency", [0, -1])
    def test_concurrency_below_one_raises(self, system, workload50, concurrency):
        queries = list(workload50)[:2]
        with pytest.raises(ValueError, match="concurrency"):
            system.query_batch("NR", queries, concurrency=concurrency)


class TestSystemSurface:
    def test_compare_returns_method_runs(self, system, workload50):
        queries = list(workload50)[:5]
        runs = system.compare(["NR", "DJ"], queries)
        assert set(runs) == {"NR", "DJ"}
        for run in runs.values():
            assert isinstance(run, MethodRun)
            assert run.mismatches == 0

    def test_compare_defaults_to_comparison_schemes(self, system, workload50):
        runs = system.compare(workload=list(workload50)[:2])
        assert set(runs) == {"DJ", "NR", "EB", "LD", "AF"}

    def test_channel_cache_keys_on_resolved_params(self, system, config):
        """Equivalent param spellings share one channel (one session sequence)."""
        implied = system.channel("NR")
        explicit = system.channel("NR", num_regions=config.eb_nr_regions)
        assert implied is explicit

    def test_single_query_advances_sessions(self, system, medium_network):
        nodes = medium_network.node_ids()
        first = system.query("NR", nodes[0], nodes[-1])
        second = system.query("NR", nodes[0], nodes[-1])
        assert first.found and second.found
        assert first.distance == second.distance
        # The memoized channel advances its session count, so consecutive
        # queries tune in at different cycle offsets (as in the paper).
        latencies = {
            first.metrics.access_latency_packets,
            second.metrics.access_latency_packets,
            system.query("NR", nodes[0], nodes[-1]).metrics.access_latency_packets,
        }
        assert len(latencies) > 1

    def test_from_config_builds_the_configured_network(self, config):
        built = AirSystem.from_config(config)
        assert built.network.name == "germany"
        assert built.default_options.device is config.device

    def test_memory_bound_option_threads_through(self, system, workload50):
        queries = list(workload50)[:15]
        plain = system.query_batch("NR", queries)
        bound = system.query_batch("NR", queries, memory_bound=True)
        assert bound.mismatches == 0
        # Section 6.1 compression lowers the average working set (Figure 13).
        assert bound.mean.peak_memory_bytes < plain.mean.peak_memory_bytes
        assert bound.mean.cpu_seconds > 0.0

    def test_memory_bound_rejected_for_full_cycle_schemes(self, system):
        with pytest.raises(ValueError, match="memory-bound"):
            system.client("DJ", ClientOptions(memory_bound=True))


class TestDeprecationShims:
    def test_build_scheme_still_works_but_warns(self, medium_network, config):
        from repro.experiments import build_scheme

        with pytest.warns(DeprecationWarning, match="build_scheme is deprecated"):
            scheme = build_scheme("NR", medium_network, config)
        assert scheme.short_name == "NR"
        assert scheme.num_regions == config.eb_nr_regions

    def test_build_scheme_unknown_method_still_valueerrors(self, medium_network, config):
        from repro.experiments import build_scheme

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError):
                build_scheme("XYZ", medium_network, config)

    def test_compare_methods_still_works_but_warns(self, medium_network, config, workload50):
        from repro.experiments import compare_methods

        with pytest.warns(DeprecationWarning, match="compare_methods is deprecated"):
            runs = compare_methods(["DJ"], medium_network, list(workload50)[:2], config)
        assert set(runs) == {"DJ"}
        assert runs["DJ"].mismatches == 0

    def test_compare_methods_keys_by_caller_spelling(self, medium_network, config, workload50):
        """The old function keyed results by the method strings as given."""
        from repro.experiments import compare_methods

        with pytest.warns(DeprecationWarning):
            runs = compare_methods(["nr"], medium_network, list(workload50)[:2], config)
        assert set(runs) == {"nr"}
        assert runs["nr"].method == "NR"

    def test_build_scheme_result_identical_to_registry_path(
        self, medium_network, config, workload50
    ):
        """The shim must not just work -- it must match the registry path bit
        for bit (same cycle, same per-query metrics)."""
        from repro import air
        from repro.air import registry
        from repro.engine import execute_workload
        from repro.experiments import build_scheme

        with pytest.warns(DeprecationWarning):
            shimmed = build_scheme("NR", medium_network, config)
        registry_scheme = air.create(
            "NR", medium_network, **registry.params_from_config("NR", config)
        )
        ours, theirs = shimmed.server_metrics(), registry_scheme.server_metrics()
        # precomputation_seconds is wall clock; everything else must match.
        assert (ours.scheme, ours.cycle_packets, ours.cycle_bytes,
                ours.index_packets, ours.data_packets) == (
            theirs.scheme, theirs.cycle_packets, theirs.cycle_bytes,
            theirs.index_packets, theirs.data_packets)
        queries = list(workload50)[:5]
        shim_run = execute_workload(shimmed, queries)
        registry_run = execute_workload(registry_scheme, queries)
        assert shim_run.mismatches == registry_run.mismatches == 0
        for ours, theirs in zip(shim_run.per_query, registry_run.per_query):
            assert _deterministic_fields(ours) == _deterministic_fields(theirs)

    def test_compare_methods_result_identical_to_airsystem_compare(
        self, medium_network, config, workload50
    ):
        from repro.experiments import compare_methods

        queries = list(workload50)[:4]
        with pytest.warns(DeprecationWarning):
            shimmed = compare_methods(["NR", "DJ"], medium_network, queries, config)
        system = AirSystem(medium_network, config=config)
        direct = system.compare(["NR", "DJ"], queries)
        assert set(shimmed) == set(direct)
        for method in shimmed:
            assert shimmed[method].mismatches == direct[method].mismatches == 0
            assert [
                _deterministic_fields(m) for m in shimmed[method].per_query
            ] == [_deterministic_fields(m) for m in direct[method].per_query]

    def test_method_constants_resolve_through_registry(self):
        with pytest.warns(DeprecationWarning, match="COMPARISON_METHODS"):
            from repro.experiments import COMPARISON_METHODS  # noqa: F401 - shim

            assert set(COMPARISON_METHODS) == {"DJ", "NR", "EB", "LD", "AF"}
        with pytest.warns(DeprecationWarning, match="ALL_METHODS"):
            from repro.experiments import runner

            assert set(runner.ALL_METHODS) == {
                "DJ", "NR", "EB", "LD", "AF", "SPQ", "HiTi",
            }


class TestConfigValidation:
    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError, match="unknown network"):
            ExperimentConfig(network="atlantis")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scale": 0.0},
            {"scale": -1.0},
            {"num_queries": 0},
            {"eb_nr_regions": 0},
            {"arcflag_regions": -4},
            {"hiti_regions": 0},
            {"num_landmarks": 0},
            {"loss_rates": [0.5, 1.5]},
            {"finetune_settings": [16, 0]},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_valid_config_accepted(self):
        config = ExperimentConfig(network="milan", scale=0.5, num_queries=1)
        assert config.network == "milan"


class TestVersionedRefresh:
    """The dynamic-network refresh path: lineage, counters, edge cases."""

    @pytest.fixture()
    def fresh_system(self, medium_network, config):
        network = medium_network.copy()
        network.clear_delta()
        return AirSystem(network, config=config)

    @staticmethod
    def _bump_weight(network, factor=1.5):
        edge = next(iter(network.edges()))
        weight = network.edge_weight(edge.source, edge.target)
        network.update_edge_weight(edge.source, edge.target, weight * factor)
        return edge

    def test_refresh_on_clean_network_is_a_noop(self, fresh_system):
        report = fresh_system.refresh()
        assert report.noop
        assert report.parent_fingerprint == report.fingerprint
        assert fresh_system.cache_info().incremental_rebuilds == 0

    def test_weight_update_refreshes_in_place(self, fresh_system):
        system = fresh_system
        before = system.scheme("NR")
        self._bump_weight(system.network)
        report = system.refresh()
        assert report.incremental == ("NR",)
        assert report.rebuilt == ()
        assert not report.structural
        assert report.num_changes == 1
        # In-place refresh: same scheme object, re-keyed to the new structure.
        assert system.scheme("NR") is before
        info = system.cache_info()
        assert info.incremental_rebuilds == 1 and info.full_rebuilds == 0
        assert info.entries == 1

    def test_structural_mutation_forces_full_rebuild(self, fresh_system):
        system = fresh_system
        stale = system.scheme("NR")
        nodes = system.network.node_ids()
        system.network.add_edge(nodes[0], nodes[-1], 123.0)
        report = system.refresh()
        assert report.structural
        assert report.rebuilt == ("NR",)
        assert system.scheme("NR") is not stale
        assert system.cache_info().full_rebuilds == 1

    def test_lineage_chains_across_refreshes(self, fresh_system):
        system = fresh_system
        fingerprints = [system.network.fingerprint()]
        system.scheme("DJ")
        for factor in (1.5, 2.5):
            self._bump_weight(system.network, factor)
            system.refresh()
            fingerprints.append(system.network.fingerprint())
        assert system.lineage() == list(reversed(fingerprints))
        # An unknown fingerprint has no recorded ancestry.
        assert system.lineage("no-such-fingerprint") == ["no-such-fingerprint"]

    def test_refresh_drops_entry_already_rebuilt_by_a_query(self, fresh_system):
        system = fresh_system
        system.scheme("NR")
        self._bump_weight(system.network)
        rebuilt = system.scheme("NR")  # full rebuild at the new fingerprint
        report = system.refresh()
        assert report.dropped == ("NR",)
        assert report.incremental == () and report.rebuilt == ()
        assert system.cache_info().entries == 1
        assert system.scheme("NR") is rebuilt

    def test_prune_after_interleaved_mutate_query_refresh(self, fresh_system):
        """prune_cache() leaves exactly the live structure after a busy loop."""
        system = fresh_system
        system.scheme("NR")
        system.channel("NR")
        self._bump_weight(system.network, 1.5)
        system.scheme("NR")  # rebuilt by a query before any refresh
        self._bump_weight(system.network, 2.0)
        report = system.refresh()
        # The oldest entry follows the coalesced delta onto the live
        # fingerprint; the mid-stream rebuild is now stale.
        assert report.dropped == () and report.incremental == ("NR",)
        assert system.cache_info().entries == 2
        assert system.prune_cache() == 1
        current = system.network.fingerprint()
        live = system.scheme("NR")
        assert all(key[2] == current for key in system._schemes)
        assert system.scheme("NR") is live
        assert system.prune_cache() == 0

    def test_apply_updates_applies_and_refreshes_in_one_call(self, fresh_system):
        system = fresh_system
        system.scheme("DJ")
        edge = next(iter(system.network.edges()))
        weight = system.network.edge_weight(edge.source, edge.target)
        report = system.apply_updates([(edge.source, edge.target, weight * 3.0)])
        assert report.incremental == ("DJ",)
        assert system.network.edge_weight(edge.source, edge.target) == weight * 3.0
        assert not system.network.has_pending_delta

    def test_refreshed_channels_serve_the_refreshed_cycle(self, fresh_system):
        system = fresh_system
        stale_channel = system.channel("NR")
        self._bump_weight(system.network)
        system.refresh()
        fresh_channel = system.channel("NR")
        assert fresh_channel is not stale_channel
        assert fresh_channel.cycle is system.scheme("NR").cycle


class TestChannelOptionsKeying:
    """Regression: the channel cache must key on the full client options."""

    @pytest.fixture()
    def pair(self, query_pairs):
        return query_pairs[0]

    def test_memory_bound_clients_do_not_share_session_sequences(
        self, medium_network, config, pair
    ):
        source, target = pair
        bound = ClientOptions(memory_bound=True)
        plain = ClientOptions()

        alone = AirSystem(medium_network.copy(), config=config).query(
            "NR", source, target, bound
        )
        shared = AirSystem(medium_network.copy(), config=config)
        shared.query("NR", source, target, plain)  # must not advance bound's channel
        interleaved = shared.query("NR", source, target, bound)

        assert interleaved.distance == alone.distance
        assert _deterministic_fields(interleaved.metrics) == _deterministic_fields(
            alone.metrics
        )

    def test_channel_cache_distinguishes_option_sets(self, medium_network, config):
        system = AirSystem(medium_network.copy(), config=config)
        default = system.channel("NR")
        assert system.channel("NR") is default
        bound = system.channel("NR", options=ClientOptions(memory_bound=True))
        assert bound is not default
        assert system.channel("NR", options=ClientOptions(memory_bound=True)) is bound
        lossy = system.channel("NR", loss_rate=0.1, seed=3)
        assert lossy is not default
