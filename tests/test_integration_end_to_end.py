"""End-to-end integration tests across the whole stack.

These tests mirror the paper's evaluation loop in miniature: build a scaled
paper network, construct every scheme, push the same query workload through
all of them over a (possibly lossy) channel, and check both correctness and
the qualitative relationships the paper reports.
"""

import pytest

from repro.experiments import ExperimentConfig, QueryWorkload, compare_methods
from repro.network import datasets


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        network="milan",
        scale=0.015,
        seed=5,
        num_queries=10,
        eb_nr_regions=8,
        arcflag_regions=8,
        num_landmarks=2,
    )


@pytest.fixture(scope="module")
def network(config):
    return datasets.load(config.network, scale=config.scale, seed=config.seed)


@pytest.fixture(scope="module")
def workload(network, config):
    return QueryWorkload(network, config.num_queries, seed=config.seed)


@pytest.fixture(scope="module")
def runs(network, workload, config):
    return compare_methods(["DJ", "NR", "EB", "LD", "AF"], network, workload, config)


class TestCorrectnessAcrossMethods:
    def test_no_method_returns_a_wrong_distance(self, runs):
        for method, run in runs.items():
            assert run.mismatches == 0, f"{method} returned wrong distances"

    def test_every_method_processed_every_query(self, runs, workload):
        for run in runs.values():
            assert len(run.per_query) == len(workload)


class TestPaperShapeClaims:
    def test_dijkstra_cycle_is_shortest(self, runs):
        dijkstra_cycle = runs["DJ"].server.cycle_packets
        for method, run in runs.items():
            assert run.server.cycle_packets >= dijkstra_cycle

    def test_nr_and_eb_cycles_close_to_dijkstra(self, runs):
        """Table 1: NR and EB broadcast very little indexing information."""
        dijkstra_cycle = runs["DJ"].server.cycle_packets
        assert runs["NR"].server.cycle_packets <= 1.6 * dijkstra_cycle
        assert runs["EB"].server.cycle_packets <= 1.8 * dijkstra_cycle

    def test_nr_has_lowest_tuning_time(self, runs):
        nr = runs["NR"].mean.tuning_time_packets
        for method in ("DJ", "LD", "AF"):
            assert nr < runs[method].mean.tuning_time_packets

    def test_nr_has_lowest_memory(self, runs):
        nr = runs["NR"].mean.peak_memory_bytes
        for method in ("DJ", "LD", "AF"):
            assert nr < runs[method].mean.peak_memory_bytes

    def test_eb_better_than_full_cycle_methods_on_tuning(self, runs):
        eb = runs["EB"].mean.tuning_time_packets
        assert eb < runs["LD"].mean.tuning_time_packets
        assert eb < runs["AF"].mean.tuning_time_packets

    def test_full_cycle_methods_memory_equals_their_cycle(self, runs):
        for method in ("DJ", "LD", "AF"):
            run = runs[method]
            assert run.mean.peak_memory_bytes >= run.server.cycle_bytes


class TestLossyChannelIntegration:
    def test_all_methods_stay_correct_at_five_percent_loss(self, network, workload, config):
        lossy_runs = compare_methods(
            ["DJ", "NR", "EB"], network, workload, config, loss_rate=0.05
        )
        for method, run in lossy_runs.items():
            assert run.mismatches == 0

    def test_loss_increases_mean_tuning(self, network, workload, config, runs):
        lossy_runs = compare_methods(["DJ"], network, workload, config, loss_rate=0.10)
        assert (
            lossy_runs["DJ"].mean.tuning_time_packets
            > runs["DJ"].mean.tuning_time_packets
        )
