"""Unit tests for bidirectional Dijkstra (cross-check implementation)."""

import random

import pytest

from repro.network.algorithms.bidirectional import bidirectional_dijkstra
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.algorithms.paths import INFINITY, path_cost, validate_path


class TestBidirectional:
    def test_agrees_with_unidirectional_on_random_queries(self, small_network):
        rng = random.Random(6)
        nodes = small_network.node_ids()
        for _ in range(15):
            source, target = rng.choice(nodes), rng.choice(nodes)
            expected = shortest_path(small_network, source, target).distance
            result = bidirectional_dijkstra(small_network, source, target)
            assert result.distance == pytest.approx(expected)

    def test_returned_path_is_consistent(self, small_network):
        rng = random.Random(7)
        nodes = small_network.node_ids()
        for _ in range(10):
            source, target = rng.choice(nodes), rng.choice(nodes)
            result = bidirectional_dijkstra(small_network, source, target)
            if result.found and source != target:
                assert result.path[0] == source
                assert result.path[-1] == target
                assert validate_path(small_network, result.path)
                assert path_cost(small_network, result.path) == pytest.approx(result.distance)

    def test_source_equals_target(self, small_network):
        node = small_network.node_ids()[0]
        result = bidirectional_dijkstra(small_network, node, node)
        assert result.distance == 0.0
        assert result.path == [node]

    def test_unreachable_target(self, small_network):
        network = small_network.copy()
        network.add_node(424242, 0.0, 0.0)
        result = bidirectional_dijkstra(network, network.node_ids()[0], 424242)
        assert result.distance == INFINITY

    def test_unknown_nodes_raise(self, small_network):
        with pytest.raises(KeyError):
            bidirectional_dijkstra(small_network, -5, small_network.node_ids()[0])
