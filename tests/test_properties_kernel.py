"""Property suite for the CSR snapshot layer and the array SP kernel.

The contract under test (see ``docs/api.md``): with a fresh snapshot, every
kernel search -- and therefore every dispatched ``dijkstra_*`` call -- is
**bit-identical** to the dict reference implementation: same IEEE-754
distance values, same predecessor choices on equal-distance ties, same
settled counts, and the same ``distances``/``predecessors`` dict insertion
order.  That must hold on static networks, after random weight-update
streams (in-place snapshot patching), through the pure-Python fallback, and
for the masked search that replaced the EB/NR clients' per-query subgraphs.
"""

import random

import pytest

from repro.engine import AirSystem
from repro.index.arcflag import ArcFlagIndex
from repro.network.algorithms import kernel
from repro.network.algorithms.dijkstra import (
    dijkstra_distances,
    dijkstra_multi_target,
    dijkstra_search,
    shortest_path,
)
from repro.network.algorithms.paths import INFINITY
from repro.network.csr import CSRGraph
from repro.network.generators import GeneratorConfig, generate_road_network
from repro.network.graph import RoadNetwork, build_network
from repro.partitioning.kdtree import build_kdtree_partitioning

SEEDS = [3, 11, 29]


@pytest.fixture(params=[True, False], ids=["accel", "pure"])
def accel_mode(request, monkeypatch):
    """Run each property in both kernel modes (scipy path and faithful loop)."""
    if request.param and not kernel.HAVE_ACCELERATOR:
        pytest.skip("accelerator not installed")
    monkeypatch.setattr(kernel, "USE_ACCELERATOR", request.param)
    return request.param


def make_network(seed: int, num_nodes: int = 90, num_edges: int = 230) -> RoadNetwork:
    network = generate_road_network(
        GeneratorConfig(num_nodes=num_nodes, num_edges=num_edges, seed=seed)
    )
    network.clear_delta()
    return network


def reference_copy(network: RoadNetwork) -> RoadNetwork:
    """A snapshot-less copy: searches on it take the dict reference path."""
    copy = network.copy()
    assert copy.csr_snapshot() is None
    return copy


def assert_same_result(kernel_result, reference_result):
    """Full bit-identity: values, tie choices, counts, and dict key order."""
    assert kernel_result.distances == reference_result.distances
    assert list(kernel_result.distances) == list(reference_result.distances)
    assert kernel_result.predecessors == reference_result.predecessors
    assert list(kernel_result.predecessors) == list(reference_result.predecessors)
    assert kernel_result.settled == reference_result.settled


# ----------------------------------------------------------------------
# Dispatch bit-identity on static networks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_sssp_bit_identical_forward_and_reverse(seed, accel_mode):
    network = make_network(seed)
    reference = reference_copy(network)
    network.ensure_csr()
    rng = random.Random(seed)
    for source in rng.sample(network.node_ids(), 12):
        for reverse in (False, True):
            assert_same_result(
                dijkstra_distances(network, source, reverse=reverse),
                dijkstra_distances(reference, source, reverse=reverse),
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_point_to_point_bit_identical_including_frontier(seed, accel_mode):
    """Early termination leaves tentative frontier labels; they must match too."""
    network = make_network(seed)
    reference = reference_copy(network)
    network.ensure_csr()
    rng = random.Random(seed + 1)
    ids = network.node_ids()
    for _ in range(15):
        source, target = rng.choice(ids), rng.choice(ids)
        assert_same_result(
            dijkstra_search(network, source, target=target),
            dijkstra_search(reference, source, target=target),
        )
        got = shortest_path(network, source, target)
        want = shortest_path(reference, source, target)
        assert (got.distance, got.path, got.settled) == (
            want.distance,
            want.path,
            want.settled,
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_multi_target_bit_identical(seed, accel_mode):
    network = make_network(seed)
    reference = reference_copy(network)
    network.ensure_csr()
    rng = random.Random(seed + 2)
    ids = network.node_ids()
    for size in (0, 1, 4, 9):
        source = rng.choice(ids)
        targets = rng.sample(ids, size)
        assert_same_result(
            dijkstra_multi_target(network, source, targets),
            dijkstra_multi_target(reference, source, targets),
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_combined_target_and_targets_bit_identical(seed, accel_mode):
    """`target` and `targets` together terminate exactly like the dict loop."""
    network = make_network(seed, num_nodes=60, num_edges=150)
    reference = reference_copy(network)
    network.ensure_csr()
    rng = random.Random(seed + 7)
    ids = network.node_ids()
    for _ in range(10):
        source, target = rng.choice(ids), rng.choice(ids)
        targets = set(rng.sample(ids, rng.randint(1, 5)))
        assert_same_result(
            dijkstra_search(network, source, target=target, targets=targets),
            dijkstra_search(reference, source, target=target, targets=targets),
        )
    # Unknown target alongside live targets: only the targets terminate.
    source = ids[0]
    assert_same_result(
        dijkstra_search(network, source, target=10**9, targets={ids[-1]}),
        dijkstra_search(reference, source, target=10**9, targets={ids[-1]}),
    )


def test_unknown_target_degenerates_to_full_sweep(accel_mode):
    network = make_network(7)
    reference = reference_copy(network)
    network.ensure_csr()
    source = network.node_ids()[0]
    assert_same_result(
        dijkstra_search(network, source, target=10**9),
        dijkstra_search(reference, source, target=10**9),
    )


def test_zero_weight_edges_stay_exact(accel_mode):
    """A zero-weight edge routes predecessor sweeps onto the faithful loop."""
    network = build_network(
        nodes=[(i, float(i), 0.0) for i in range(6)],
        edges=[
            (0, 1, 2.0),
            (1, 2, 0.0),
            (0, 2, 2.0),
            (2, 3, 1.0),
            (3, 4, 0.0),
            (1, 4, 3.0),
            (4, 5, 1.0),
        ],
    )
    reference = reference_copy(network)
    snapshot = network.ensure_csr()
    assert snapshot.has_nonpositive_weight
    for source in network.node_ids():
        assert_same_result(
            dijkstra_distances(network, source),
            dijkstra_distances(reference, source),
        )


def test_parallel_edges_stay_exact(accel_mode):
    network = build_network(
        nodes=[(i, float(i), 0.0) for i in range(4)],
        edges=[
            (0, 1, 5.0),
            (0, 1, 2.0),  # parallel, cheaper: shortest paths must use it
            (0, 1, 2.0),  # parallel duplicate weight
            (1, 2, 1.0),
            (0, 2, 9.0),
            (2, 3, 1.0),
        ],
    )
    reference = reference_copy(network)
    network.ensure_csr()
    for source in network.node_ids():
        assert_same_result(
            dijkstra_distances(network, source),
            dijkstra_distances(reference, source),
        )


# ----------------------------------------------------------------------
# Masked search (the EB/NR client path)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_masked_search_equals_subgraph_search(seed, accel_mode):
    network = make_network(seed, num_nodes=70, num_edges=180)
    network.ensure_csr()
    rng = random.Random(seed + 3)
    ids = network.node_ids()
    for _ in range(12):
        allowed = set(rng.sample(ids, rng.randint(2, len(ids))))
        inside = sorted(allowed)
        source, target = rng.choice(inside), rng.choice(inside)
        got = kernel.masked_shortest_path(network, source, target, allowed)
        want = shortest_path(network.subgraph(allowed), source, target)
        assert (got.distance, got.path, got.settled) == (
            want.distance,
            want.path,
            want.settled,
        )


def test_masked_search_requires_endpoints_inside_the_mask():
    network = make_network(5, num_nodes=30, num_edges=70)
    arena = kernel.arena_for(network.ensure_csr())
    ids = network.node_ids()
    allowed = set(ids[:10])
    outside = next(node for node in ids if node not in allowed)
    with pytest.raises(KeyError):
        arena.point_to_point(outside, ids[0], allowed=allowed)
    with pytest.raises(KeyError):
        arena.point_to_point(ids[0], outside, allowed=allowed)


def test_masked_search_returns_none_without_snapshot():
    network = make_network(6, num_nodes=20, num_edges=50)
    assert network.csr_snapshot() is None
    assert kernel.masked_shortest_path(network, 0, 1, {0, 1}) is None


# ----------------------------------------------------------------------
# Dynamic updates: in-place snapshot patching
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_patched_snapshot_bit_identical_after_update_stream(seed, accel_mode):
    network = make_network(seed)
    network.ensure_csr()
    rng = random.Random(seed + 4)
    edges = list(network.edges())
    for _ in range(4):  # four batches, snapshot patched through all of them
        for _ in range(8):
            edge = rng.choice(edges)
            factor = rng.uniform(0.4, 2.5)
            try:
                network.update_edge_weight(
                    edge.source, edge.target, max(1e-3, edge.weight * factor)
                )
            except KeyError:
                continue
        stats = network.csr_stats()
        assert stats["builds"] == 1 and stats["fresh"] == 1
        reference = reference_copy(network)
        for source in rng.sample(network.node_ids(), 6):
            assert_same_result(
                dijkstra_distances(network, source),
                dijkstra_distances(reference, source),
            )
            assert_same_result(
                dijkstra_distances(network, source, reverse=True),
                dijkstra_distances(reference, source, reverse=True),
            )
    assert network.csr_stats()["patches"] > 0


def test_structural_mutation_invalidates_and_rebuild_recovers():
    network = make_network(9, num_nodes=40, num_edges=100)
    first = network.ensure_csr()
    ids = network.node_ids()
    network.add_edge(ids[0], ids[-1], 0.25)
    assert network.csr_snapshot() is None
    second = network.ensure_csr()
    assert second is not first
    assert second.num_edges == first.num_edges + 1
    reference = reference_copy(network)
    assert_same_result(
        dijkstra_distances(network, ids[0]), dijkstra_distances(reference, ids[0])
    )
    assert network.csr_stats()["builds"] == 2


def test_noop_weight_update_does_not_patch():
    network = make_network(10, num_nodes=20, num_edges=50)
    network.ensure_csr()
    edge = next(network.edges())
    network.update_edge_weight(edge.source, edge.target, edge.weight)
    assert network.csr_stats()["patches"] == 0
    assert network.csr_snapshot() is not None


def test_patch_weight_rejects_unknown_entries():
    snapshot = CSRGraph.from_network(make_network(11, num_nodes=12, num_edges=30))
    with pytest.raises(KeyError):
        snapshot.patch_weight(snapshot.ids[0], snapshot.ids[1], -123.0, 1.0)


# ----------------------------------------------------------------------
# CSR compilation details
# ----------------------------------------------------------------------
def test_from_adjacency_includes_targets_and_extra_nodes():
    snapshot = CSRGraph.from_adjacency({1: [(2, 1.0)]}, extra_nodes=[7])
    assert snapshot.ids == [1, 2, 7]
    assert snapshot.num_edges == 1
    arena = kernel.KernelArena(snapshot)
    isolated = arena.multi_target(7, {1, 2})
    assert isolated.distance_to(1) == INFINITY
    assert arena.multi_target(1, {2}).distance_to(2) == 1.0


def test_snapshot_index_order_is_id_order():
    network = RoadNetwork()
    for node_id in (44, 2, 17):  # deliberately unsorted insertion
        network.add_node(node_id, 0.0, 0.0)
    network.add_edge(44, 2, 1.0)
    snapshot = network.ensure_csr()
    assert snapshot.ids == [2, 17, 44]
    assert snapshot.size_bytes() > 0
    assert snapshot.adjacency_of(44) == ((0, 1.0),)


def test_kernel_result_api_edges():
    network = make_network(12, num_nodes=25, num_edges=60)
    arena = kernel.arena_for(network.ensure_csr())
    source = network.node_ids()[0]
    distance_only = arena.sssp(source, need_predecessors=False)
    assert distance_only.distance_to(10**9) == INFINITY
    assert set(distance_only.distances_dict()) == set(
        arena.sssp(source).distances_dict()
    )
    with pytest.raises(ValueError):
        distance_only.predecessors_dict()
    with pytest.raises(ValueError):
        distance_only.path_to(source)
    full = arena.sssp(source)
    assert full.path_to(source) == [source]
    assert full.path_to(10**9) == []
    with pytest.raises(KeyError):
        arena.sssp(10**9)


@pytest.mark.skipif(not kernel.HAVE_ACCELERATOR, reason="accelerator not installed")
@pytest.mark.parametrize("seed", SEEDS)
def test_p2p_reconstruction_is_deferred_and_probe_is_exact(seed):
    """The accelerated p2p result is lazy, and its settled-probe is exact.

    ``point_to_point`` answers ``distance_to(target)`` straight off the
    sweep's label array (the target is always settled at termination);
    the O(settled log settled) tree replay must not run until a consumer
    reads the dicts -- and once it does, every label must equal the dict
    reference's, tentative frontier values included.
    """
    network = make_network(seed)
    reference = reference_copy(network)
    arena = kernel.arena_for(network.ensure_csr())
    rng = random.Random(seed + 5)
    ids = network.node_ids()
    for _ in range(10):
        source, target = rng.choice(ids), rng.choice(ids)
        want = dijkstra_search(reference, source, target=target)
        got = arena.point_to_point(source, target)
        if got._finish is None:
            continue  # tiny searches may construct eagerly; nothing to defer
        # The query answer and the settled count come from the probe alone.
        assert got.distance_to(target) == want.distance_to(target)
        assert got.settled == want.settled
        assert got._finish is not None, "distance_to(target) must not materialize"
        # Reading a dict pays for the replay exactly once...
        assert got.distances_dict() == want.distances
        assert got._finish is None
        # ...and after it, every label (frontier included) is bit-identical.
        assert got.predecessors_dict() == want.predecessors
        for probe_node in rng.sample(ids, 6):
            assert got.distance_to(probe_node) == want.distance_to(probe_node)


@pytest.mark.skipif(not kernel.HAVE_ACCELERATOR, reason="accelerator not installed")
def test_p2p_probe_matches_reference_labels_without_materialization(accel_mode):
    """Fresh (unmaterialized) results answer probes with faithful labels."""
    if not accel_mode:
        pytest.skip("probe exists only on the accelerated path")
    network = make_network(17, num_nodes=70, num_edges=180)
    reference = reference_copy(network)
    arena = kernel.arena_for(network.ensure_csr())
    rng = random.Random(99)
    ids = network.node_ids()
    for _ in range(8):
        source, target = rng.choice(ids), rng.choice(ids)
        want = dijkstra_search(reference, source, target=target)
        for probe_node in rng.sample(ids, 4) + [target]:
            # A fresh result per probe: settled nodes answer off the probe
            # tuple, frontier/unreached nodes fall back to the replay --
            # both must land on the faithful label.
            fresh = arena.point_to_point(source, target)
            assert fresh.distance_to(probe_node) == want.distance_to(probe_node)


def test_arena_is_cached_per_thread_and_snapshot():
    network = make_network(13, num_nodes=20, num_edges=50)
    snapshot = network.ensure_csr()
    assert kernel.arena_for(snapshot) is kernel.arena_for(snapshot)


def test_distance_only_sweep_matches_reference(accel_mode):
    """The lean distance-only loop: same labels and settled count, no tree."""
    network = make_network(15, num_nodes=50, num_edges=130)
    reference = reference_copy(network)
    arena = kernel.arena_for(network.ensure_csr())
    for source in network.node_ids()[:6]:
        for reverse in (False, True):
            sweep = arena.sssp(source, need_predecessors=False, reverse=reverse)
            want = dijkstra_distances(reference, source, reverse=reverse)
            assert sweep.distances_dict() == want.distances
            assert sweep.settled == want.settled
            assert sweep.pred is None and sweep.order is None


def test_network_level_convenience_functions(accel_mode):
    network = make_network(16, num_nodes=40, num_edges=100)
    reference = reference_copy(network)
    source, target = network.node_ids()[0], network.node_ids()[-1]
    assert (
        kernel.sssp(network, source).distances_dict()
        == dijkstra_distances(reference, source).distances
    )
    assert kernel.point_to_point(network, source, target).distance_to(
        target
    ) == shortest_path(reference, source, target).distance
    single = kernel.many_to_many(network, [source], need_predecessors=True)
    assert len(single) == 1
    assert single[0].predecessors_dict() == dijkstra_distances(
        reference, source
    ).predecessors
    with pytest.raises(KeyError):
        kernel.arena_for(network.ensure_csr()).point_to_point(source, 10**9)


def test_kernel_handles_edgeless_network(accel_mode):
    network = RoadNetwork()
    for node_id in range(3):
        network.add_node(node_id, float(node_id), 0.0)
    network.clear_delta()
    sweep = kernel.sssp(network, 0)
    assert sweep.distances_dict() == {0: 0.0}
    assert sweep.settled == 1
    assert kernel.point_to_point(network, 0, 2).distance_to(2) == INFINITY


def test_path_to_guards_against_broken_chains():
    snapshot = CSRGraph.from_adjacency({0: [(1, 1.0)], 1: [(2, 1.0)]})
    broken = kernel.KernelResult(
        snapshot, 0, dist=[0.0, 1.0, 2.0], pred=[-1, -1, 1], order=[0, 1, 2], settled=3
    )
    assert broken.path_to(1) == []  # discovered but its chain never reaches 0
    assert broken.path_to(0) == [0]


# ----------------------------------------------------------------------
# Rewired precomputations agree across kernel modes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_arcflag_vectorized_equals_reference_flags(seed):
    if not kernel.HAVE_ACCELERATOR:
        pytest.skip("accelerator not installed")
    network = make_network(seed, num_nodes=60, num_edges=150)
    partitioning = build_kdtree_partitioning(network, 4)
    vectorized = ArcFlagIndex(network, partitioning)
    reference = ArcFlagIndex.__new__(ArcFlagIndex)
    reference.network = network
    reference.partitioning = partitioning
    reference.num_regions = partitioning.num_regions
    reference._build_reference()
    assert vectorized.flags == reference.flags
    assert list(vectorized.flags) == list(reference.flags)


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_border_precomputation_identical_across_kernel_modes(seed):
    if not kernel.HAVE_ACCELERATOR:
        pytest.skip("accelerator not installed")
    from repro.air.border_paths import BorderPathPrecomputation

    network = make_network(seed, num_nodes=60, num_edges=150)
    partitioning = build_kdtree_partitioning(network, 4)
    accel = BorderPathPrecomputation(network, partitioning)
    kernel.USE_ACCELERATOR = False
    try:
        pure = BorderPathPrecomputation(network, partitioning)
    finally:
        kernel.USE_ACCELERATOR = True
    assert accel.min_distance == pure.min_distance
    assert accel.max_distance == pure.max_distance
    assert accel.cross_border_nodes == pure.cross_border_nodes
    assert accel.traversed_regions == pure.traversed_regions
    assert accel.num_border_pairs == pure.num_border_pairs


# ----------------------------------------------------------------------
# Engine surface
# ----------------------------------------------------------------------
def test_cache_info_reports_snapshot_stats():
    network = make_network(14, num_nodes=40, num_edges=100)
    system = AirSystem(network)
    system.scheme("DJ")
    info = system.cache_info()
    assert info.snapshot_builds == 1
    assert info.snapshot_fresh
    assert info.snapshot_patches == 0
    edge = next(network.edges())
    system.apply_updates([(edge.source, edge.target, edge.weight + 1.0)])
    info = system.cache_info()
    assert info.snapshot_patches == 1
    assert info.snapshot_fresh
    network.add_node(10**6, 0.0, 0.0)
    assert not system.cache_info().snapshot_fresh


# ----------------------------------------------------------------------
# Per-thread arena lifetime across snapshot patches and supersession
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_stale_arena_cannot_resurrect_superseded_snapshot(accel_mode, seed):
    """A patched-then-superseded snapshot never serves through a stale arena.

    Sequence: build a snapshot, search through its per-thread arena, patch
    it in place via ``apply_updates`` (same snapshot object, new weights),
    then mutate structurally so the snapshot is superseded outright.  At
    each step the network-level kernel entry points must answer from the
    *current* structure/weights; the old arena keyed to the dead snapshot
    must be unreachable through them.
    """
    network = make_network(seed, num_nodes=60, num_edges=150)
    source = network.node_ids()[0]

    csr_before = network.ensure_csr()
    arena_before = kernel.arena_for(csr_before)
    # In-place weight patch: same snapshot object, so the same arena serves
    # it -- and must see the new weights immediately.
    edge = next(iter(network.edges()))
    network.apply_updates([(edge.source, edge.target, edge.weight * 3.5)])
    assert network.ensure_csr() is csr_before
    assert kernel.arena_for(network.ensure_csr()) is arena_before
    assert_same_result(
        dijkstra_distances(network, source),
        dijkstra_distances(reference_copy(network), source),
    )

    # Structural mutation supersedes the snapshot: the network entry points
    # must recompile and re-key, never reuse the old arena or its caches.
    nodes = network.node_ids()
    network.add_edge(nodes[2], nodes[-3], 0.5)
    csr_after = network.ensure_csr()
    assert csr_after is not csr_before
    arena_after = kernel.arena_for(csr_after)
    assert arena_after is not arena_before
    assert_same_result(
        dijkstra_distances(network, source),
        dijkstra_distances(reference_copy(network), source),
    )

    # The stale arena still answers for the dead snapshot it is pinned to
    # (callers holding a stale CSR get stale-snapshot answers, not current
    # ones) -- but the per-thread registry never hands it out for the live
    # snapshot, which is what "resurrection" would mean.
    assert arena_before._csr_ref() is csr_before
    assert kernel.arena_for(network.ensure_csr()) is arena_after
