"""Tests for the binary serialization layer (codec, artifacts, graph codecs)."""

from __future__ import annotations

import math
import struct

import pytest

from repro.network.generators import GeneratorConfig, generate_road_network
from repro.partitioning.grid import build_grid_partitioning
from repro.partitioning.kdtree import build_kdtree_partitioning
from repro.serialize import (
    ArtifactChecksumError,
    ArtifactVersionError,
    BuildArtifact,
    FORMAT_VERSION,
    decode_network,
    decode_value,
    encode_network,
    encode_value,
    params_fingerprint,
)
from repro.serialize.codec import CodecError
from repro.serialize.graphs import (
    csr_state,
    cycle_layout,
    partitioning_state,
    restore_csr,
    restore_partitioning,
)


@pytest.fixture(scope="module")
def network():
    net = generate_road_network(
        GeneratorConfig(num_nodes=90, num_edges=210, seed=5), name="serialize-net"
    )
    net.clear_delta()
    return net


class TestCodecRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            2**63 - 1,
            -(2**63),
            2**100,
            -(2**100),
            0.0,
            3.141592653589793,
            float("inf"),
            -float("inf"),
            "",
            "héllo wörld",
            b"",
            b"\x00\xff\x7f",
            [],
            (),
            {},
            set(),
            frozenset(),
            [1, 2, 3],
            (1, 2, 3),
            [1.5, 2.5],
            (0.5, -0.5),
            ["mixed", 1, 2.0, None],
            {"a": 1, "b": [2, 3], "c": {"nested": (4, 5)}},
            {(1, 2): 0.5, (3, 4): 1.5},
            {1: 0.5, 2: 1.5},
            {3, 1, 2},
            frozenset([(1, 2), (0, 5)]),
            [[1], [2.0], ["x"]],
        ],
    )
    def test_round_trip_preserves_value_and_type(self, value):
        result = decode_value(encode_value(value))
        assert result == value
        assert type(result) is type(value)

    def test_bool_is_not_flattened_to_int(self):
        result = decode_value(encode_value([True, 1, False, 0]))
        assert [type(item) for item in result] == [bool, int, bool, int]

    def test_large_homogeneous_containers_round_trip(self):
        ints = list(range(-50_000, 50_000, 7))
        floats = [i / 3.0 for i in range(10_000)]
        table = dict(zip(ints, (float(i) for i in ints)))
        for value in (ints, tuple(ints), floats, tuple(floats), table):
            assert decode_value(encode_value(value)) == value

    def test_int64_overflow_falls_back_to_generic_encoding(self):
        values = [1, 2, 2**80]
        assert decode_value(encode_value(values)) == values

    def test_dict_insertion_order_is_preserved(self):
        original = {key: key * 2 for key in (5, 1, 9, 3, 7)}
        restored = decode_value(encode_value(original))
        assert list(restored) == [5, 1, 9, 3, 7]

    def test_negative_zero_sign_survives(self):
        assert math.copysign(1.0, decode_value(encode_value(-0.0))) == -1.0

    def test_set_encoding_is_canonical(self):
        left, right = {3, 1, 2}, set()
        right.update((2, 3))
        right.add(1)
        assert encode_value(left) == encode_value(right)

    def test_unsupported_type_raises(self):
        with pytest.raises(CodecError):
            encode_value(object())

    def test_unsortable_set_raises(self):
        with pytest.raises(CodecError):
            encode_value({1, "a"})

    def test_trailing_bytes_raise(self):
        with pytest.raises(CodecError):
            decode_value(encode_value(1) + b"\x00")

    def test_truncated_bytes_raise(self):
        data = encode_value([1.0, 2.0, 3.0])
        with pytest.raises(CodecError):
            decode_value(data[:-4])

    def test_unknown_tag_raises(self):
        with pytest.raises(CodecError):
            decode_value(b"\xf0")


class TestBuildArtifactFraming:
    def _artifact(self) -> BuildArtifact:
        return BuildArtifact(
            scheme="NR",
            params={"num_regions": 8},
            network_fingerprint="ab" * 16,
            payload=encode_value({"state": [1, 2, 3]}),
        )

    def test_round_trip(self):
        artifact = self._artifact()
        assert BuildArtifact.from_bytes(artifact.to_bytes()) == artifact

    def test_encoding_is_deterministic(self):
        assert self._artifact().to_bytes() == self._artifact().to_bytes()

    def test_read_header_without_payload_decode(self):
        header = BuildArtifact.read_header(self._artifact().to_bytes())
        assert header["scheme"] == "NR"
        assert header["params"] == {"num_regions": 8}
        assert header["format_version"] == FORMAT_VERSION

    def test_bit_flip_raises_checksum_error(self):
        data = bytearray(self._artifact().to_bytes())
        data[len(data) // 2] ^= 0x40
        with pytest.raises(ArtifactChecksumError):
            BuildArtifact.from_bytes(bytes(data))

    def test_truncation_raises_checksum_error(self):
        data = self._artifact().to_bytes()
        for cut in (0, 3, 10, len(data) - 5):
            with pytest.raises(ArtifactChecksumError):
                BuildArtifact.from_bytes(data[:cut])

    def test_bad_magic_raises_checksum_error(self):
        data = bytearray(self._artifact().to_bytes())
        data[:4] = b"NOPE"
        with pytest.raises(ArtifactChecksumError):
            BuildArtifact.from_bytes(bytes(data))

    def test_foreign_version_raises_version_error(self):
        data = bytearray(self._artifact().to_bytes())
        struct.pack_into("<H", data, 4, FORMAT_VERSION + 1)
        with pytest.raises(ArtifactVersionError) as excinfo:
            BuildArtifact.from_bytes(bytes(data))
        assert excinfo.value.found == FORMAT_VERSION + 1
        assert excinfo.value.expected == FORMAT_VERSION

    def test_stream_write_is_byte_identical_to_to_bytes(self, tmp_path):
        import io as _io

        artifact = self._artifact()
        for chunk_bytes in (1, 7, 777, 1 << 20):
            buffer = _io.BytesIO()
            written = artifact.write_to(buffer, chunk_bytes=chunk_bytes)
            assert buffer.getvalue() == artifact.to_bytes()
            assert written == len(artifact.to_bytes())

    def test_stream_round_trip(self, tmp_path):
        artifact = self._artifact()
        path = tmp_path / "artifact.bin"
        with path.open("wb") as handle:
            artifact.write_to(handle, chunk_bytes=11)
        with path.open("rb") as handle:
            assert BuildArtifact.read_from(handle, chunk_bytes=13) == artifact

    def test_stream_round_trip_empty_payload(self, tmp_path):
        import io as _io

        artifact = BuildArtifact(
            scheme="DJ", params={}, network_fingerprint="00" * 16, payload=b""
        )
        buffer = _io.BytesIO()
        artifact.write_to(buffer)
        buffer.seek(0)
        assert BuildArtifact.read_from(buffer) == artifact

    def test_stream_read_failure_modes(self, tmp_path):
        import io as _io

        data = self._artifact().to_bytes()
        # Truncation at every framing boundary.
        for cut in (0, 3, 8, len(data) - 40, len(data) - 5):
            with pytest.raises(ArtifactChecksumError):
                BuildArtifact.read_from(_io.BytesIO(data[:cut]))
        # Corruption, trailing bytes, bad magic.
        flipped = bytearray(data)
        flipped[len(flipped) // 2] ^= 0x20
        with pytest.raises(ArtifactChecksumError, match="checksum"):
            BuildArtifact.read_from(_io.BytesIO(bytes(flipped)))
        with pytest.raises(ArtifactChecksumError, match="trailing"):
            BuildArtifact.read_from(_io.BytesIO(data + b"x"))
        with pytest.raises(ArtifactChecksumError, match="magic"):
            BuildArtifact.read_from(_io.BytesIO(b"NOPE" + data[4:]))
        # A foreign version is staleness, not corruption, and is detected
        # before the header bytes are interpreted.
        foreign = bytearray(data)
        struct.pack_into("<H", foreign, 4, FORMAT_VERSION + 1)
        with pytest.raises(ArtifactVersionError):
            BuildArtifact.read_from(_io.BytesIO(bytes(foreign)))

    def test_params_fingerprint_is_order_independent_and_value_exact(self):
        assert params_fingerprint({"a": 1, "b": 2}) == params_fingerprint(
            {"b": 2, "a": 1}
        )
        assert params_fingerprint({"a": 1}) != params_fingerprint({"a": True})
        assert params_fingerprint({"a": 1}) != params_fingerprint({"a": 1.0})


class TestNetworkCodec:
    def test_round_trip_is_bit_identical(self, network):
        restored = decode_network(encode_network(network))
        assert restored.fingerprint() == network.fingerprint()
        assert restored.node_ids() == network.node_ids()
        assert [
            (e.source, e.target, e.weight) for e in restored.edges()
        ] == [(e.source, e.target, e.weight) for e in network.edges()]
        assert not restored.has_pending_delta

    def test_restored_network_preserves_coordinates(self, network):
        restored = decode_network(encode_network(network))
        for node_id in network.node_ids():
            assert restored.coordinates(node_id) == network.coordinates(node_id)


class TestCSRCodec:
    def test_round_trip_preserves_arrays_and_ids(self, network):
        csr = network.ensure_csr()
        restored = restore_csr(decode_value(encode_value(csr_state(csr))))
        assert restored.ids == csr.ids
        assert restored.fwd_offsets == csr.fwd_offsets
        assert restored.fwd_targets == csr.fwd_targets
        assert restored.fwd_weights == csr.fwd_weights
        assert restored.rev_offsets == csr.rev_offsets
        assert restored.rev_targets == csr.rev_targets
        assert restored.rev_weights == csr.rev_weights
        assert restored.fwd_adj == csr.fwd_adj
        assert restored.has_nonpositive_weight == csr.has_nonpositive_weight


class TestPartitioningCodec:
    def test_kdtree_round_trip_matches_membership(self, network):
        partitioning = build_kdtree_partitioning(network, 8)
        state = decode_value(encode_value(partitioning_state(partitioning)))
        restored = restore_partitioning(network, state)
        for node_id in network.node_ids():
            assert restored.region_of(node_id) == partitioning.region_of(node_id)
        for region in range(8):
            assert restored.border_nodes(region) == partitioning.border_nodes(region)
            assert restored.nodes_in_region(region) == partitioning.nodes_in_region(
                region
            )

    def test_grid_round_trip_matches_membership(self, network):
        partitioning = build_grid_partitioning(network, rows=3, cols=4)
        state = decode_value(encode_value(partitioning_state(partitioning)))
        restored = restore_partitioning(network, state)
        for node_id in network.node_ids():
            assert restored.region_of(node_id) == partitioning.region_of(node_id)

    def test_unknown_kind_raises(self, network):
        with pytest.raises(CodecError):
            restore_partitioning(network, {"kind": "voronoi"})


class TestCycleLayout:
    def test_layout_pins_down_every_packet_position(self, network):
        from repro import air

        scheme = air.create("NR", network, num_regions=8)
        layout = cycle_layout(scheme.cycle)
        assert layout["total_packets"] == scheme.cycle.total_packets
        assert len(layout["segments"]) == len(scheme.cycle.segments)
        for record, segment in zip(layout["segments"], scheme.cycle.segments):
            assert record == [
                segment.name,
                segment.kind.value,
                segment.size_bytes,
                segment.num_packets,
                segment.region,
            ]
        # Plain values end to end: the layout must survive the codec.
        assert decode_value(encode_value(layout)) == layout


class TestCorruptTagContainment:
    def test_unhashable_dict_key_from_corrupt_bytes_raises_codec_error(self):
        # Encode {key: value} with a str key, then flip the key's tag from
        # STR (0x05) to LIST (0x07): decoding now builds a dict with a list
        # key, which must surface as CodecError, not TypeError.
        data = bytearray(encode_value({"k": 1}))
        position = data.index(0x05)
        data[position] = 0x07
        with pytest.raises(CodecError):
            decode_value(bytes(data))

    def test_unhashable_set_item_from_corrupt_bytes_raises_codec_error(self):
        data = bytearray(encode_value({("a",)}))
        # Flip the inner tuple's tag (TUPLE 0x08) to LIST (0x07).
        position = data.index(0x08)
        data[position] = 0x07
        with pytest.raises(CodecError):
            decode_value(bytes(data))

    def test_corrupt_header_with_unhashable_key_is_quarantined_not_crash(
        self, tmp_path
    ):
        from repro.store import ArtifactStore

        artifact = BuildArtifact(
            scheme="DJ",
            params={"x": 1},
            network_fingerprint="0" * 32,
            payload=encode_value({}),
        )
        store = ArtifactStore(tmp_path)
        path = store.put(artifact)
        data = bytearray(path.read_bytes())
        # Corrupt the first STR tag inside the header region.
        position = data.index(0x05, 10)
        data[position] = 0x07
        path.write_bytes(bytes(data))
        assert store.get("DJ", {"x": 1}, "0" * 32) is None
        assert store.entries() == []
        assert store.stats()["quarantined"] >= 1
