"""Unit tests for broadcast cycle layout and positional queries."""

import pytest

from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.packet import PACKET_PAYLOAD_BYTES, Segment, SegmentKind


def make_cycle():
    segments = [
        Segment("index", SegmentKind.INDEX, size_bytes=2 * PACKET_PAYLOAD_BYTES),
        Segment("data-0", SegmentKind.NETWORK_DATA, size_bytes=3 * PACKET_PAYLOAD_BYTES),
        Segment("data-1", SegmentKind.NETWORK_DATA, size_bytes=PACKET_PAYLOAD_BYTES),
        Segment("index2", SegmentKind.INDEX, size_bytes=2 * PACKET_PAYLOAD_BYTES),
        Segment("data-2", SegmentKind.NETWORK_DATA, size_bytes=2 * PACKET_PAYLOAD_BYTES),
    ]
    return BroadcastCycle(segments, name="test")


class TestLayout:
    def test_total_packets(self):
        assert make_cycle().total_packets == 10

    def test_segment_starts(self):
        cycle = make_cycle()
        assert cycle.segment_start("index") == 0
        assert cycle.segment_start("data-0") == 2
        assert cycle.segment_start("data-1") == 5
        assert cycle.segment_start("index2") == 6
        assert cycle.segment_start("data-2") == 8

    def test_segment_range(self):
        assert make_cycle().segment_range("data-0") == (2, 3)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            BroadcastCycle(
                [
                    Segment("a", SegmentKind.INDEX, 10),
                    Segment("a", SegmentKind.INDEX, 10),
                ]
            )

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            BroadcastCycle([])

    def test_total_bytes_and_duration(self):
        cycle = make_cycle()
        assert cycle.total_bytes == 10 * PACKET_PAYLOAD_BYTES
        # 10 packets of 128 bytes at 1280 bytes/s -> 8 bits/byte * 1280/1280 = 8s... keep it simple:
        assert cycle.duration_seconds(128 * 8) == pytest.approx(10.0)


class TestPositionalQueries:
    def test_segment_at_every_offset(self):
        cycle = make_cycle()
        expected = ["index"] * 2 + ["data-0"] * 3 + ["data-1"] + ["index2"] * 2 + ["data-2"] * 2
        for offset, name in enumerate(expected):
            assert cycle.segment_at(offset).name == name

    def test_segment_at_wraps_around(self):
        cycle = make_cycle()
        assert cycle.segment_at(10).name == "index"
        assert cycle.segment_at(25).name == "data-1"

    def test_next_segment_of_kind_same_cycle(self):
        cycle = make_cycle()
        segment, position = cycle.next_segment_of_kind(SegmentKind.INDEX, 3)
        assert segment.name == "index2"
        assert position == 6

    def test_next_segment_of_kind_wraps_to_next_cycle(self):
        cycle = make_cycle()
        segment, position = cycle.next_segment_of_kind(SegmentKind.INDEX, 9)
        assert segment.name == "index"
        assert position == 10

    def test_next_segment_of_kind_with_global_positions(self):
        cycle = make_cycle()
        # Offset 23 is cycle offset 3 in the third repetition; the next index
        # copy is "index2" at cycle offset 6, i.e. global position 26.
        segment, position = cycle.next_segment_of_kind(SegmentKind.INDEX, 23)
        assert segment.name == "index2"
        assert position == 26

    def test_next_segment_of_kind_missing_kind(self):
        cycle = make_cycle()
        with pytest.raises(LookupError):
            cycle.next_segment_of_kind(SegmentKind.LOCAL_INDEX, 0)

    def test_next_segment_named(self):
        cycle = make_cycle()
        assert cycle.next_segment_named("data-1", 0) == 5
        assert cycle.next_segment_named("data-1", 5) == 5
        assert cycle.next_segment_named("data-1", 6) == 15

    def test_segments_of_kind_and_region(self):
        cycle = make_cycle()
        assert [s.name for s in cycle.segments_of_kind(SegmentKind.INDEX)] == ["index", "index2"]
        assert cycle.segments_of_region(3) == []

    def test_composition(self):
        composition = make_cycle().composition()
        assert composition["index"] == 4
        assert composition["network_data"] == 6
