"""Unit tests for the Partitioning abstraction (regions and border nodes)."""

import pytest

from repro.network.generators import generate_grid_network
from repro.partitioning.base import Partitioning
from repro.partitioning.grid import GridPartitioner
from repro.partitioning.kdtree import build_kdtree_partitioning


class TestRegionMembership:
    def test_region_of_matches_locator(self, small_network, small_partitioning):
        for node in small_network.nodes():
            assert small_partitioning.region_of(node.node_id) == small_partitioning.region_of_point(
                node.x, node.y
            )

    def test_nodes_in_region_partition_the_network(self, small_network, small_partitioning):
        all_nodes = []
        for region in range(small_partitioning.num_regions):
            all_nodes.extend(small_partitioning.nodes_in_region(region))
        assert sorted(all_nodes) == sorted(small_network.node_ids())

    def test_non_empty_regions_listed(self, small_partitioning):
        non_empty = small_partitioning.non_empty_regions()
        for region in non_empty:
            assert small_partitioning.nodes_in_region(region)

    def test_locator_out_of_range_rejected(self, small_network):
        class BrokenLocator:
            num_regions = 4

            def locate(self, x, y):
                return 7

        with pytest.raises(ValueError):
            Partitioning(small_network, BrokenLocator())


class TestBorderNodes:
    def test_border_nodes_have_foreign_neighbors(self, small_network, small_partitioning):
        for region in range(small_partitioning.num_regions):
            for border in small_partitioning.border_nodes(region):
                neighbors = [n for n, _ in small_network.neighbors(border)] + [
                    n for n, _ in small_network.in_neighbors(border)
                ]
                assert any(
                    small_partitioning.region_of(n) != region for n in neighbors
                )

    def test_non_border_nodes_have_only_local_neighbors(self, small_network, small_partitioning):
        for region in range(small_partitioning.num_regions):
            border = set(small_partitioning.border_nodes(region))
            for node in small_partitioning.nodes_in_region(region):
                if node in border:
                    continue
                neighbors = [n for n, _ in small_network.neighbors(node)] + [
                    n for n, _ in small_network.in_neighbors(node)
                ]
                assert all(small_partitioning.region_of(n) == region for n in neighbors)

    def test_is_border_node_consistent_with_lists(self, small_partitioning):
        for region in range(small_partitioning.num_regions):
            for node in small_partitioning.border_nodes(region):
                assert small_partitioning.is_border_node(node)

    def test_single_region_has_no_border_nodes(self, small_network):
        partitioning = Partitioning(
            small_network, GridPartitioner(small_network.bounding_box(), 1, 1)
        )
        assert partitioning.border_nodes(0) == []

    def test_grid_network_border_counts(self):
        """On a 4x4 grid split into 4 quadrant regions, exactly the nodes
        adjacent to the split lines are border nodes."""
        network = generate_grid_network(rows=4, cols=4, extent=300.0, seed=0)
        partitioning = Partitioning(network, GridPartitioner(network.bounding_box(), 2, 2))
        # Every node in a 2x2 quadrant of a 4x4 grid touches another quadrant
        # except the outer corner node: 3 border nodes per region... actually
        # in a 2x2 block, the corner node away from both split lines has
        # neighbors only within its own block.
        for region in range(4):
            assert len(partitioning.border_nodes(region)) == 3


class TestRegionAdjacency:
    def test_region_adjacency_symmetric_for_bidirectional_networks(self, small_network, small_partitioning):
        adjacency = small_partitioning.region_adjacency()
        for region, neighbors in adjacency.items():
            for other in neighbors:
                assert region in adjacency[other]

    def test_region_adjacency_excludes_self(self, small_partitioning):
        adjacency = small_partitioning.region_adjacency()
        for region, neighbors in adjacency.items():
            assert region not in neighbors
