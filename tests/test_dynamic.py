"""Unit tests for the dynamic-network subsystem.

Covers the :class:`RoadNetwork` weight-update API and its pending-delta
bookkeeping, the update-stream generators, the scheme-level incremental
rebuild contracts, and the stream-driven fleet simulation.
"""

from __future__ import annotations

import random

import pytest

from repro import air
from repro.dynamic import (
    UPDATE_STREAMS,
    EdgeUpdate,
    congestion_ramp,
    random_closures,
    simulate_update_stream,
)
from repro.engine import AirSystem
from repro.network.delta import NetworkDelta, WeightChange
from repro.network.generators import GeneratorConfig, generate_road_network
from repro.network.graph import RoadNetwork


@pytest.fixture()
def diamond() -> RoadNetwork:
    """A 4-node diamond with a parallel edge pair on one arm."""
    network = RoadNetwork(name="diamond")
    for node_id, x, y in [(0, 0, 0), (1, 1, 1), (2, 1, -1), (3, 2, 0)]:
        network.add_node(node_id, x, y)
    network.add_edge(0, 1, 2.0)
    network.add_edge(0, 1, 5.0)  # parallel, heavier
    network.add_edge(0, 2, 3.0)
    network.add_edge(1, 3, 2.0)
    network.add_edge(2, 3, 1.0)
    network.clear_delta()
    return network


@pytest.fixture()
def dynamic_network() -> RoadNetwork:
    network = generate_road_network(
        GeneratorConfig(num_nodes=120, num_edges=280, seed=41), name="dynamic-unit"
    )
    network.clear_delta()
    return network


class TestUpdateEdgeWeight:
    def test_updates_weight_and_both_adjacencies(self, diamond):
        change = diamond.update_edge_weight(2, 3, 4.5)
        assert change == WeightChange(2, 3, 1.0, 4.5)
        assert diamond.edge_weight(2, 3) == 4.5
        assert (2, 4.5) in diamond.in_neighbors(3)
        diamond.validate()

    def test_targets_the_minimum_weight_parallel_edge(self, diamond):
        change = diamond.update_edge_weight(0, 1, 3.0)
        assert change.old_weight == 2.0
        # Both parallels remain; the minimum is now the updated one.
        assert sorted(w for t, w in diamond.neighbors(0) if t == 1) == [3.0, 5.0]

    def test_nonexistent_edge_raises_keyerror(self, diamond):
        with pytest.raises(KeyError):
            diamond.update_edge_weight(3, 0, 1.0)
        with pytest.raises(KeyError):
            diamond.update_edge_weight(99, 0, 1.0)

    @pytest.mark.parametrize("weight", [0.0, -1.0, -0.0])
    def test_non_positive_weight_raises_valueerror(self, diamond, weight):
        with pytest.raises(ValueError):
            diamond.update_edge_weight(0, 2, weight)

    def test_remove_edge_of_nonexistent_edge_raises_keyerror(self, diamond):
        with pytest.raises(KeyError):
            diamond.remove_edge(3, 0)
        with pytest.raises(KeyError):
            diamond.remove_edge(0, 99)

    def test_fingerprint_tracks_updates_and_reverts(self, diamond):
        base = diamond.fingerprint()
        diamond.update_edge_weight(0, 2, 7.0)
        mutated = diamond.fingerprint()
        assert mutated != base
        assert diamond.copy().fingerprint() == mutated
        diamond.update_edge_weight(0, 2, 3.0)
        assert diamond.fingerprint() == base


class TestPendingDelta:
    def test_apply_updates_accepts_tuples_and_records(self, diamond):
        changes = diamond.apply_updates([(0, 2, 6.0), EdgeUpdate(2, 3, 2.5)])
        assert [c.new_weight for c in changes] == [6.0, 2.5]
        delta = diamond.pending_delta()
        assert not delta.structural
        assert delta.dirty_nodes == frozenset({0, 2, 3})
        assert len(delta.changes) == 2

    def test_changes_coalesce_per_edge(self, diamond):
        diamond.update_edge_weight(0, 2, 6.0)
        diamond.update_edge_weight(0, 2, 9.0)
        delta = diamond.pending_delta()
        assert delta.changes == (WeightChange(0, 2, 3.0, 9.0),)

    def test_reverted_update_leaves_no_change(self, diamond):
        diamond.update_edge_weight(0, 2, 6.0)
        diamond.update_edge_weight(0, 2, 3.0)
        delta = diamond.pending_delta()
        assert delta.changes == ()
        assert delta.dirty_nodes  # the touch is still recorded
        assert not diamond.pending_delta().structural

    def test_noop_update_records_nothing(self, diamond):
        change = diamond.update_edge_weight(0, 2, 3.0)
        assert change.is_noop
        assert not diamond.has_pending_delta

    def test_structural_mutations_set_the_flag(self, diamond):
        diamond.add_edge(3, 0, 1.0)
        assert diamond.pending_delta().structural
        diamond.clear_delta()
        diamond.remove_edge(3, 0)
        assert diamond.pending_delta().structural
        diamond.clear_delta()
        diamond.add_node(9, 5.0, 5.0)
        delta = diamond.pending_delta()
        assert delta.structural and 9 in delta.dirty_nodes

    def test_clear_delta_resets_everything(self, diamond):
        diamond.update_edge_weight(0, 2, 6.0)
        diamond.add_node(9, 5.0, 5.0)
        diamond.clear_delta()
        assert diamond.pending_delta() == NetworkDelta()
        assert not diamond.has_pending_delta

    def test_dirty_regions_maps_through_a_partitioning(self, dynamic_network):
        from repro.partitioning.kdtree import build_kdtree_partitioning

        partitioning = build_kdtree_partitioning(dynamic_network, 8)
        edge = next(iter(dynamic_network.edges()))
        dynamic_network.update_edge_weight(
            edge.source, edge.target, dynamic_network.edge_weight(edge.source, edge.target) * 2
        )
        regions = dynamic_network.pending_delta().dirty_regions(partitioning)
        assert regions == {
            partitioning.region_of(edge.source),
            partitioning.region_of(edge.target),
        }


class TestUpdateStreams:
    def test_congestion_ramp_is_deterministic_and_triangular(self, dynamic_network):
        first = congestion_ramp(dynamic_network, steps=5, seed=9, peak_factor=3.0)
        second = congestion_ramp(dynamic_network, steps=5, seed=9, peak_factor=3.0)
        assert first == second
        assert len(first) == 5 and first.num_updates > 0
        labels = [batch.label for batch in first]
        assert labels[0] == "congestion x1.00"
        assert labels[2] == "congestion x3.00"  # peak at mid-stream
        assert labels[-1] == "congestion x1.00"
        # Absolute targets: replaying the whole ramp returns to base weights.
        base = dynamic_network.fingerprint()
        for batch in first:
            dynamic_network.apply_updates(batch.updates)
        assert dynamic_network.fingerprint() == base

    def test_congestion_ramp_validates_arguments(self, dynamic_network):
        with pytest.raises(ValueError):
            congestion_ramp(dynamic_network, steps=0)
        with pytest.raises(ValueError):
            congestion_ramp(dynamic_network, peak_factor=0.0)
        empty = RoadNetwork()
        empty.add_node(0, 0, 0)
        with pytest.raises(ValueError):
            congestion_ramp(empty)

    def test_random_closures_close_and_reopen(self, dynamic_network):
        stream = random_closures(
            dynamic_network, steps=6, seed=4, closures_per_step=2, reopen_after=2
        )
        assert len(stream) == 6
        closed = {}
        base = {}
        for batch in stream:
            for update in batch.updates:
                key = (update.source, update.target)
                if key in closed:
                    # A reopen restores the recorded base weight exactly.
                    assert update.weight == base[key]
                    del closed[key]
                else:
                    base.setdefault(key, dynamic_network.edge_weight(*key))
                    assert update.weight == pytest.approx(base[key] * 25.0)
                    closed[key] = batch.step
        # Streams apply cleanly to the live network.
        for batch in stream:
            dynamic_network.apply_updates(batch.updates)
        dynamic_network.validate()

    def test_registry_names_the_builtin_streams(self):
        assert set(UPDATE_STREAMS) == {"congestion", "closures"}


class TestIncrementalRebuildContract:
    def test_structural_delta_is_refused_by_every_incremental_scheme(
        self, dynamic_network
    ):
        nodes = dynamic_network.node_ids()
        for name, params in [("DJ", {}), ("NR", {"num_regions": 8}), ("HiTi", {"num_regions": 8})]:
            scheme = air.create(name, dynamic_network, **params)
            scheme.cycle
            dynamic_network.add_edge(nodes[0], nodes[-1], 11.0)
            delta = dynamic_network.pending_delta()
            assert scheme.incremental_rebuild(dynamic_network, delta) is False
            dynamic_network.remove_edge(nodes[0], nodes[-1])
            dynamic_network.clear_delta()

    def test_foreign_network_is_refused(self, dynamic_network):
        scheme = air.create("DJ", dynamic_network)
        other = dynamic_network.copy()
        edge = next(iter(other.edges()))
        other.update_edge_weight(edge.source, edge.target, edge.weight + 1.0)
        assert scheme.incremental_rebuild(other, other.pending_delta()) is False

    def test_default_hook_declines(self, dynamic_network):
        for name, params in [("AF", {"num_regions": 8}), ("LD", {"num_landmarks": 2})]:
            scheme = air.create(name, dynamic_network, **params)
            scheme.cycle
            edge = next(iter(dynamic_network.edges()))
            dynamic_network.update_edge_weight(
                edge.source, edge.target, dynamic_network.edge_weight(edge.source, edge.target) * 1.5
            )
            delta = dynamic_network.pending_delta()
            assert scheme.incremental_rebuild(dynamic_network, delta) is False
            dynamic_network.clear_delta()

    def test_refresh_accounting_reaches_server_metrics(self, dynamic_network):
        scheme = air.create("DJ", dynamic_network)
        scheme.cycle
        edge = next(iter(dynamic_network.edges()))
        dynamic_network.update_edge_weight(
            edge.source, edge.target, dynamic_network.edge_weight(edge.source, edge.target) * 1.5
        )
        assert scheme.incremental_rebuild(dynamic_network, dynamic_network.pending_delta())
        dynamic_network.clear_delta()
        metrics = scheme.server_metrics()
        assert metrics.refreshes == 1
        assert metrics.refresh_seconds >= 0.0


class TestSimulateUpdateStream:
    @pytest.fixture()
    def system(self, dynamic_network):
        return AirSystem(dynamic_network)

    def test_stream_run_is_exact_and_incremental(self, system):
        stream = congestion_ramp(system.network, steps=4, seed=3)
        run = system.simulate_update_stream(
            "NR", stream, devices_per_step=8, seed=5, num_regions=8
        )
        assert len(run.steps) == 4
        assert run.num_devices == 32
        assert run.mismatches == 0
        assert run.full_rebuilds == 0
        # x1.0 and repeated-peak steps are genuine no-ops.
        assert run.incremental_refreshes == 2
        assert run.refresh_seconds >= 0.0

    def test_concurrency_does_not_change_stream_results(self, dynamic_network):
        def run_once(concurrency):
            network = dynamic_network.copy()
            network.clear_delta()
            system = AirSystem(network)
            stream = random_closures(network, steps=3, seed=11)
            return system.simulate_update_stream(
                "DJ",
                stream,
                devices_per_step=10,
                seed=2,
                concurrency=concurrency,
            )

        sequential = run_once(1)
        threaded = run_once(4)
        assert sequential.signature() == threaded.signature()
        assert sequential.mismatches == threaded.mismatches == 0

    def test_scenario_accepts_names_and_callables(self, system):
        from repro.experiments import fleet_hot_destination

        stream = random_closures(system.network, steps=2, seed=1)
        by_name = system.simulate_update_stream(
            "DJ", stream, devices_per_step=6, seed=3, scenario="hot-destination"
        )
        assert by_name.mismatches == 0
        network = system.network
        run = simulate_update_stream(
            system,
            "DJ",
            random_closures(network, steps=1, seed=2),
            devices_per_step=6,
            seed=3,
            scenario=fleet_hot_destination,
        )
        assert run.mismatches == 0
