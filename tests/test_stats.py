"""Tests for the shared nearest-rank percentile helpers (repro.stats)."""

import pytest

from repro.stats import percentile, summarize_latencies


class TestPercentile:
    def test_empty_sequence_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value_is_every_percentile(self):
        for q in (0, 1, 50, 99, 100):
            assert percentile([42.0], q) == 42.0

    def test_nearest_rank_on_a_decade(self):
        values = list(range(1, 11))  # 1..10
        assert percentile(values, 50) == 5.0
        assert percentile(values, 90) == 9.0
        assert percentile(values, 99) == 10.0
        assert percentile(values, 100) == 10.0

    def test_order_independent(self):
        shuffled = [3.0, 1.0, 2.0, 5.0, 4.0]
        assert percentile(shuffled, 50) == 3.0

    def test_zeroth_percentile_is_the_minimum(self):
        assert percentile([7.0, 3.0, 9.0], 0) == 3.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_result_is_a_float(self):
        assert isinstance(percentile([1, 2, 3], 50), float)


class TestSummarizeLatencies:
    def test_keys_and_values(self):
        summary = summarize_latencies([4.0, 1.0, 3.0, 2.0])
        assert summary["count"] == 4
        assert summary["p50"] == 2.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)

    def test_empty_summary(self):
        summary = summarize_latencies([])
        assert summary["count"] == 0
        assert summary["p99"] == 0.0


class TestFleetReexport:
    def test_fleet_results_still_exports_percentile(self):
        # The helper was hoisted out of fleet.results; the old import path
        # stays valid for downstream users.
        from repro.fleet.results import percentile as fleet_percentile

        assert fleet_percentile is percentile
