"""Tests for the Appendix A spatial air indexes (HCI, DSI, BGI)."""

import random

import pytest

from repro.spatial import (
    BroadcastGridIndexScheme,
    DistributedSpatialIndexScheme,
    HilbertCurveIndexScheme,
    generate_points,
)

SCHEME_CLASSES = [
    HilbertCurveIndexScheme,
    DistributedSpatialIndexScheme,
    BroadcastGridIndexScheme,
]


@pytest.fixture(scope="module")
def points():
    return generate_points(250, extent=1_000.0, seed=9, clusters=4)


@pytest.fixture(scope="module", params=SCHEME_CLASSES, ids=lambda cls: cls.short_name)
def scheme(request, points):
    return request.param(points)


class TestPointGeneration:
    def test_count_and_determinism(self):
        a = generate_points(100, seed=3)
        b = generate_points(100, seed=3)
        assert len(a) == 100
        assert a == b

    def test_clustered_points_stay_in_extent(self):
        for point in generate_points(200, extent=500.0, seed=1, clusters=5):
            assert 0.0 <= point.x <= 500.0
            assert 0.0 <= point.y <= 500.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_points(-1)


class TestRangeQueries:
    def test_matches_ground_truth_on_random_windows(self, scheme):
        rng = random.Random(17)
        for _ in range(8):
            x0, y0 = rng.uniform(0, 800), rng.uniform(0, 800)
            window = (x0, y0, x0 + rng.uniform(50, 250), y0 + rng.uniform(50, 250))
            result = scheme.range_query(window)
            assert result.object_ids == scheme.true_range(window)

    def test_empty_window(self, scheme):
        result = scheme.range_query((-100.0, -100.0, -50.0, -50.0))
        assert result.object_ids == []

    def test_whole_extent_returns_everything(self, scheme, points):
        result = scheme.range_query((0.0, 0.0, 1_000.0, 1_000.0))
        assert len(result.object_ids) == len(points)

    def test_metrics_populated(self, scheme):
        result = scheme.range_query((100.0, 100.0, 400.0, 400.0))
        assert result.metrics.tuning_time_packets > 0
        assert result.metrics.access_latency_packets >= result.metrics.tuning_time_packets

    def test_selective_tuning_beats_full_cycle(self, scheme):
        """A small window must not require receiving the whole cycle."""
        result = scheme.range_query((10.0, 10.0, 60.0, 60.0))
        assert result.metrics.tuning_time_packets < scheme.cycle.total_packets


class TestKnnQueries:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_ground_truth(self, scheme, k):
        rng = random.Random(23)
        for _ in range(5):
            x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
            result = scheme.knn_query(x, y, k)
            assert result.object_ids == scheme.true_knn(x, y, k)

    def test_k_larger_than_dataset(self, scheme, points):
        result = scheme.knn_query(500.0, 500.0, len(points) + 50)
        assert len(result.object_ids) == len(points)

    def test_invalid_k_rejected(self, scheme):
        with pytest.raises(ValueError):
            scheme.knn_query(0.0, 0.0, 0)


class TestLossResilience:
    def test_range_query_correct_under_loss(self, scheme):
        channel = scheme.channel(loss_rate=0.05, seed=3)
        window = (200.0, 200.0, 600.0, 600.0)
        result = scheme.range_query(window, channel=channel)
        assert result.object_ids == scheme.true_range(window)
