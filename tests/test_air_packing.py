"""Unit tests for EB's index cell packing (paper Section 6.2, Figure 9)."""

import pytest

from repro.air.packing import (
    RowMajorCellPacking,
    SquareCellPacking,
    expected_vulnerable_packets,
)


class TestSquarePacking:
    def test_cells_of_same_block_share_a_packet(self):
        packing = SquareCellPacking(num_regions=8, cells_per_packet=16)  # 4x4 squares
        assert packing.window == 4
        assert packing.packet_of(0, 0) == packing.packet_of(3, 3)
        assert packing.packet_of(0, 0) != packing.packet_of(0, 4)

    def test_every_cell_maps_to_valid_packet(self):
        packing = SquareCellPacking(num_regions=10, cells_per_packet=9)
        for row in range(10):
            for col in range(10):
                assert 0 <= packing.packet_of(row, col) < packing.num_packets

    def test_out_of_range_cell_rejected(self):
        packing = SquareCellPacking(num_regions=4, cells_per_packet=4)
        with pytest.raises(IndexError):
            packing.packet_of(4, 0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SquareCellPacking(0, 4)
        with pytest.raises(ValueError):
            SquareCellPacking(4, 0)

    def test_cells_in_packet_inverse_mapping(self):
        packing = SquareCellPacking(num_regions=6, cells_per_packet=9)
        cells = packing.cells_in_packet(packing.packet_of(1, 1))
        assert (1, 1) in cells
        assert all(packing.packet_of(r, c) == packing.packet_of(1, 1) for r, c in cells)


class TestRowMajorPacking:
    def test_row_major_order(self):
        packing = RowMajorCellPacking(num_regions=4, cells_per_packet=4)
        assert packing.packet_of(0, 0) == 0
        assert packing.packet_of(0, 3) == 0
        assert packing.packet_of(1, 0) == 1
        assert packing.num_packets == 4

    def test_out_of_range_cell_rejected(self):
        packing = RowMajorCellPacking(num_regions=4, cells_per_packet=4)
        with pytest.raises(IndexError):
            packing.packet_of(0, 7)


class TestVulnerability:
    def test_square_packing_reduces_vulnerable_packets(self):
        """The paper's rationale: squares intersect fewer rows + columns."""
        square = SquareCellPacking(num_regions=32, cells_per_packet=15)
        row_major = RowMajorCellPacking(num_regions=32, cells_per_packet=15)
        assert expected_vulnerable_packets(square) < expected_vulnerable_packets(row_major)

    def test_packets_for_row_and_column_cover_needed_cells(self):
        packing = SquareCellPacking(num_regions=12, cells_per_packet=9)
        packets = packing.packets_for_row_and_column(3, 7)
        for k in range(12):
            assert packing.packet_of(3, k) in packets
            assert packing.packet_of(k, 7) in packets
