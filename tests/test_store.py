"""Tests for the content-addressed artifact store, failure modes included.

The satellite contract: truncated/corrupted payloads are quarantined, not
crashed on; a format-version mismatch triggers a clean rebuild; concurrent
writers of the same key are safe (atomic rename); and the LRU byte cap
evicts oldest-used entries first.
"""

from __future__ import annotations

import struct
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import air
from repro.engine import AirSystem
from repro.faults import FaultInjected, FaultPlan, FaultSpec
from repro.faults import runtime as fault_runtime
from repro.network.generators import GeneratorConfig, generate_road_network
from repro.serialize import BuildArtifact, FORMAT_VERSION, encode_value
from repro.store import ArtifactStore


@pytest.fixture(scope="module")
def network():
    net = generate_road_network(
        GeneratorConfig(num_nodes=80, num_edges=180, seed=3), name="store-net"
    )
    net.clear_delta()
    return net


@pytest.fixture(scope="module")
def nr_artifact(network):
    return air.create("NR", network, num_regions=8).artifact()


def small_artifact(tag: int) -> BuildArtifact:
    """A tiny handmade artifact (distinct key per ``tag``)."""
    return BuildArtifact(
        scheme="DJ",
        params={"tag": tag},
        network_fingerprint=f"{tag:032x}",
        payload=encode_value({"blob": bytes(64)}),
    )


class TestPutGet:
    def test_round_trip_and_counters(self, tmp_path, network, nr_artifact):
        store = ArtifactStore(tmp_path)
        path = store.put(nr_artifact)
        assert path.exists() and path.suffix == ".artifact"
        assert store.get("NR", nr_artifact.params, network.fingerprint()) == nr_artifact
        assert store.get("NR", {"num_regions": 4}, network.fingerprint()) is None
        stats = store.stats()
        assert (stats["hits"], stats["misses"], stats["writes"]) == (1, 1, 1)
        assert stats["entries"] == 1 and stats["bytes"] == path.stat().st_size

    def test_put_is_idempotent_per_key(self, tmp_path, nr_artifact):
        store = ArtifactStore(tmp_path)
        first = store.put(nr_artifact)
        second = store.put(nr_artifact)
        assert first == second
        assert len(store.entries()) == 1
        assert not list(first.parent.glob("*.tmp"))

    def test_entries_report_header_metadata(self, tmp_path, network, nr_artifact):
        store = ArtifactStore(tmp_path)
        store.put(nr_artifact)
        (entry,) = store.entries()
        assert entry.scheme == "NR"
        assert entry.params == dict(nr_artifact.params)
        assert entry.network_fingerprint == network.fingerprint()
        assert entry.format_version == FORMAT_VERSION


class TestCorruption:
    def _poison(self, store, artifact, mutate):
        path = store.put(artifact)
        data = bytearray(path.read_bytes())
        path.write_bytes(bytes(mutate(data)))
        return path

    def test_bit_flip_is_quarantined_not_crashed(self, tmp_path, network, nr_artifact):
        store = ArtifactStore(tmp_path)

        def flip(data):
            data[len(data) // 2] ^= 0xFF
            return data

        path = self._poison(store, nr_artifact, flip)
        assert store.get("NR", nr_artifact.params, network.fingerprint()) is None
        assert not path.exists()
        assert len(list(store.quarantine_dir.iterdir())) == 1
        assert store.stats()["quarantined"] == 1

    def test_truncated_payload_is_quarantined(self, tmp_path, network, nr_artifact):
        store = ArtifactStore(tmp_path)
        path = self._poison(store, nr_artifact, lambda data: data[: len(data) // 3])
        assert store.get("NR", nr_artifact.params, network.fingerprint()) is None
        assert not path.exists()
        assert store.stats()["quarantined"] == 1

    def test_garbage_file_is_quarantined(self, tmp_path, network, nr_artifact):
        store = ArtifactStore(tmp_path)
        self._poison(store, nr_artifact, lambda data: bytearray(b"not an artifact"))
        assert store.get("NR", nr_artifact.params, network.fingerprint()) is None
        assert store.stats()["quarantined"] == 1

    def test_verify_quarantines_only_bad_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        good = small_artifact(1)
        store.put(good)
        bad_path = store.put(small_artifact(2))
        bad_path.write_bytes(bad_path.read_bytes()[:-8])
        outcome = store.verify()
        assert outcome == {"checked": 2, "ok": 1, "stale": 0, "quarantined": 1}
        assert store.get("DJ", good.params, good.network_fingerprint) == good

    def test_corrupted_store_entry_triggers_clean_rebuild(self, tmp_path, network):
        """The two-tier cache rebuilds (and re-publishes) through corruption."""
        store = ArtifactStore(tmp_path)
        system = AirSystem(network.copy(), store=store)
        system.scheme("NR", num_regions=8)
        (entry,) = store.entries()
        entry.path.write_bytes(entry.path.read_bytes()[:40])

        fresh = AirSystem(network.copy(), store=store)
        scheme = fresh.scheme("NR", num_regions=8)  # must not raise
        assert scheme.cycle.total_packets > 0
        info = fresh.cache_info()
        assert info.disk_hits == 0 and info.disk_quarantined == 1
        # The rebuild re-published a good artifact.
        assert store.verify()["ok"] == 1


class TestVersionMismatch:
    def _reversion(self, path, version):
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, 4, version)
        path.write_bytes(bytes(data))

    def test_foreign_version_reads_as_clean_miss(self, tmp_path, network, nr_artifact):
        store = ArtifactStore(tmp_path)
        path = store.put(nr_artifact)
        self._reversion(path, FORMAT_VERSION + 7)
        assert store.get("NR", nr_artifact.params, network.fingerprint()) is None
        # Stale files are deleted, not quarantined: nothing was corrupted.
        assert not path.exists()
        assert not store.quarantine_dir.exists()
        stats = store.stats()
        assert stats["stale_versions"] == 1 and stats["quarantined"] == 0

    def test_version_mismatch_triggers_clean_rebuild(self, tmp_path, network):
        store = ArtifactStore(tmp_path)
        system = AirSystem(network.copy(), store=store)
        system.scheme("EB", num_regions=8)
        (entry,) = store.entries()
        self._reversion(entry.path, FORMAT_VERSION + 1)

        fresh = AirSystem(network.copy(), store=store)
        scheme = fresh.scheme("EB", num_regions=8)
        assert scheme.cycle.total_packets > 0
        info = fresh.cache_info()
        assert info.disk_hits == 0
        # Rebuilt and re-published under the current version.
        assert store.verify() == {"checked": 1, "ok": 1, "stale": 0, "quarantined": 0}


class TestConcurrentWriters:
    def test_racing_writers_of_the_same_key_are_safe(self, tmp_path, network, nr_artifact):
        store = ArtifactStore(tmp_path)
        errors = []
        barrier = threading.Barrier(8)

        def publish():
            try:
                barrier.wait(timeout=10)
                for _ in range(5):
                    store.put(nr_artifact)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=publish) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Exactly one complete, valid object; no stray temp files.
        assert len(store.entries()) == 1
        assert store.verify()["ok"] == 1
        assert not list(store.objects_dir.glob("**/*.tmp"))
        assert store.get("NR", nr_artifact.params, network.fingerprint()) == nr_artifact


class TestLRUCap:
    def test_oldest_used_entries_are_evicted_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifacts = [small_artifact(tag) for tag in range(4)]
        paths = []
        for artifact in artifacts[:3]:
            paths.append(store.put(artifact))
            time.sleep(0.01)
        # Touch #0 so #1 becomes the least recently used.
        store.get("DJ", artifacts[0].params, artifacts[0].network_fingerprint)
        time.sleep(0.01)
        # Cap so that adding one more must evict exactly one entry.
        store.max_bytes = store.total_bytes()
        store.put(artifacts[3])
        present = [
            store.contains("DJ", artifact.params, artifact.network_fingerprint)
            for artifact in artifacts
        ]
        assert present == [True, False, True, True]
        assert store.evictions == 1

    def test_cap_smaller_than_one_artifact_keeps_the_newest(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=1)
        first, second = small_artifact(1), small_artifact(2)
        store.put(first)
        time.sleep(0.01)
        store.put(second)
        assert not store.contains("DJ", first.params, first.network_fingerprint)
        assert store.contains("DJ", second.params, second.network_fingerprint)

    def test_negative_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path, max_bytes=-1)

    def test_gc_enforces_cap_and_purges_quarantine(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for tag in range(3):
            path = store.put(small_artifact(tag))
            time.sleep(0.01)
        path.write_bytes(b"junk")
        assert store.verify()["quarantined"] == 1
        outcome = store.gc(max_bytes=0, purge_quarantine=True)
        assert outcome["remaining_entries"] == 0
        assert outcome["purged_quarantine"] == 1
        assert outcome["remaining_bytes"] == 0
        # Empty shard directories are tidied away.
        assert store.objects_dir.is_dir() is False or not any(
            store.objects_dir.iterdir()
        )


class TestPrune:
    def test_prune_drops_only_matching_fingerprints(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifacts = [small_artifact(tag) for tag in range(3)]
        for artifact in artifacts:
            store.put(artifact)
        removed = store.prune({artifacts[0].network_fingerprint})
        assert removed == 1
        assert not store.contains(
            "DJ", artifacts[0].params, artifacts[0].network_fingerprint
        )
        for artifact in artifacts[1:]:
            assert store.contains("DJ", artifact.params, artifact.network_fingerprint)


class TestTornWrites:
    """Writer-killed-mid-``put`` behaviour via the ``store.put.torn`` hook.

    The property under test: no matter where the tear lands, the object
    path is never exposed (readers see a clean miss, not corruption), the
    only evidence is an invisible staging dotfile, and one
    ``clean_staging()`` + re-``put`` pass makes the store whole again.
    """

    @pytest.fixture(autouse=True)
    def _no_leaked_plan(self):
        yield
        fault_runtime.clear()

    @given(fraction=st.floats(0.05, 0.95), tag=st.integers(0, 999))
    @settings(max_examples=20, deadline=None)
    def test_torn_put_never_exposes_a_partial_object(
        self, tmp_path_factory, fraction, tag
    ):
        store = ArtifactStore(tmp_path_factory.mktemp("torn"))
        artifact = small_artifact(tag)
        fault_runtime.install(
            FaultPlan(
                [
                    FaultSpec(
                        point="store.put.torn",
                        times=1,
                        params={"fraction": fraction},
                    )
                ],
                seed=1,
            )
        )
        with pytest.raises(FaultInjected):
            store.put(artifact)
        fault_runtime.clear()

        # The final path was never touched: a reader gets a clean miss and
        # nothing lands in quarantine (there is no partial object to see).
        assert store.get("DJ", artifact.params, artifact.network_fingerprint) is None
        assert store.stats()["quarantined"] == 0
        assert store.writes == 0

        # The tear left exactly one truncated staging dotfile behind.
        debris = list(store.objects_dir.glob("*/.*.tmp"))
        assert len(debris) == 1
        torn_size = debris[0].stat().st_size
        assert torn_size > 0

        # One-pass recovery: sweep the debris, re-publish, round-trip.
        assert store.clean_staging() == 1
        assert not list(store.objects_dir.glob("*/.*.tmp"))
        path = store.put(artifact)
        assert torn_size < path.stat().st_size
        assert store.get("DJ", artifact.params, artifact.network_fingerprint) == artifact
        assert store.verify() == {"checked": 1, "ok": 1, "stale": 0, "quarantined": 0}

    def test_gc_sweeps_torn_staging_files(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fault_runtime.install(
            FaultPlan([FaultSpec(point="store.put.torn", times=1)], seed=3)
        )
        with pytest.raises(FaultInjected):
            store.put(small_artifact(1))
        fault_runtime.clear()
        outcome = store.gc()
        assert outcome["staging_removed"] == 1
        assert not list(store.objects_dir.glob("**/*.tmp"))

    def test_read_side_bit_rot_quarantines_on_get(self, tmp_path):
        """The ``store.get.corrupt`` hook drives the real quarantine path."""
        store = ArtifactStore(tmp_path)
        artifact = small_artifact(7)
        store.put(artifact)
        fault_runtime.install(
            FaultPlan([FaultSpec(point="store.get.corrupt", times=1)], seed=2)
        )
        assert store.get("DJ", artifact.params, artifact.network_fingerprint) is None
        fault_runtime.clear()
        assert store.stats()["quarantined"] == 1
        assert len(list(store.quarantine_dir.iterdir())) == 1
        # The slot is free again: a re-publish restores service.
        store.put(artifact)
        assert store.get("DJ", artifact.params, artifact.network_fingerprint) == artifact


class TestKeying:
    def test_key_embeds_every_component(self, nr_artifact):
        base = ArtifactStore.key_of(nr_artifact)
        assert ArtifactStore.key_for(
            "EB", nr_artifact.params_fingerprint(), nr_artifact.network_fingerprint
        ) != base
        assert ArtifactStore.key_for(
            "NR", "0" * 64, nr_artifact.network_fingerprint
        ) != base
        assert ArtifactStore.key_for(
            "NR", nr_artifact.params_fingerprint(), "0" * 32
        ) != base
        assert ArtifactStore.key_for(
            "NR",
            nr_artifact.params_fingerprint(),
            nr_artifact.network_fingerprint,
            FORMAT_VERSION + 1,
        ) != base


class TestDriftTolerance:
    def test_foreign_version_entries_are_skipped_not_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keep = small_artifact(1)
        store.put(keep)
        foreign_path = store.put(small_artifact(2))
        data = bytearray(foreign_path.read_bytes())
        struct.pack_into("<H", data, 4, FORMAT_VERSION + 1)
        foreign_path.write_bytes(bytes(data))
        entries = store.entries()
        # Only the current-version entry is listed; the foreign file stays
        # on disk, untouched, for its own version's readers.
        assert [entry.scheme for entry in entries] == ["DJ"]
        assert len(entries) == 1
        assert foreign_path.exists()
        assert store.stats()["quarantined"] == 0

    def test_payload_schema_drift_degrades_to_rebuild(self, tmp_path, network):
        """A checksum-valid artifact whose state shape moved must rebuild,
        not crash the serving path (the undetectable-drift failure mode)."""
        store = ArtifactStore(tmp_path)
        publisher = AirSystem(network.copy(), store=store)
        built = publisher.scheme("NR", num_regions=8)
        # Forge a valid artifact whose payload is missing the state keys.
        forged = BuildArtifact(
            scheme="NR",
            params=built._artifact_params(),
            network_fingerprint=network.fingerprint(),
            payload=encode_value({"state": {}, "precomputation_seconds": 0.0, "cycle": {}}),
        )
        store.put(forged)

        system = AirSystem(network.copy(), store=ArtifactStore(tmp_path))
        scheme = system.scheme("NR", num_regions=8)  # must not raise
        assert scheme.cycle.signature() == built.cycle.signature()
        info = system.cache_info()
        assert info.disk_hits == 1  # the store served it; restore then bailed
        # The rebuild re-published a good artifact over the forged one.
        fresh = AirSystem(network.copy(), store=ArtifactStore(tmp_path))
        assert fresh.warm_start(["NR"]).missing == ("NR",)  # default params differ
        restored = fresh.scheme("NR", num_regions=8)
        assert restored.cycle.signature() == built.cycle.signature()
        assert fresh.cache_info().disk_hits == 1
