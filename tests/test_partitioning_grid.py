"""Unit tests for regular-grid partitioning."""

import pytest

from repro.partitioning.grid import GridPartitioner, build_grid_partitioning


class TestGridPartitioner:
    def test_num_regions(self):
        grid = GridPartitioner((0, 0, 100, 100), rows=4, cols=5)
        assert grid.num_regions == 20

    def test_locate_center_of_each_cell(self):
        grid = GridPartitioner((0, 0, 10, 10), rows=2, cols=2)
        assert grid.locate(2.5, 2.5) == 0
        assert grid.locate(7.5, 2.5) == 1
        assert grid.locate(2.5, 7.5) == 2
        assert grid.locate(7.5, 7.5) == 3

    def test_points_outside_are_clamped(self):
        grid = GridPartitioner((0, 0, 10, 10), rows=2, cols=2)
        assert grid.locate(-5, -5) == 0
        assert grid.locate(50, 50) == 3

    def test_cell_bounds_partition_the_extent(self):
        grid = GridPartitioner((0, 0, 10, 20), rows=2, cols=2)
        assert grid.cell_bounds(0) == (0, 0, 5, 10)
        assert grid.cell_bounds(3) == (5, 10, 10, 20)

    def test_cell_bounds_out_of_range(self):
        grid = GridPartitioner((0, 0, 10, 10), rows=2, cols=2)
        with pytest.raises(IndexError):
            grid.cell_bounds(4)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            GridPartitioner((0, 0, 1, 1), rows=0, cols=2)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            GridPartitioner((5, 5, 0, 0), rows=2, cols=2)


class TestGridPartitioning:
    def test_every_node_assigned(self, small_network):
        partitioning = build_grid_partitioning(small_network, rows=4, cols=4)
        assert sum(partitioning.region_sizes()) == small_network.num_nodes

    def test_grid_is_less_balanced_than_kdtree(self, small_network):
        """The paper's motivation for kd-tree partitioning (Section 4.1)."""
        from repro.partitioning.kdtree import build_kdtree_partitioning

        grid = build_grid_partitioning(small_network, rows=4, cols=4)
        kdtree = build_kdtree_partitioning(small_network, 16)
        assert max(kdtree.region_sizes()) <= max(grid.region_sizes())
