"""Tests for the HiTi and SPQ broadcast adaptations (Table 1 competitors)."""

import pytest

from repro.air import HiTiBroadcastScheme, SPQBroadcastScheme
from repro.broadcast.packet import SegmentKind
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.generators import GeneratorConfig, generate_road_network


@pytest.fixture(scope="module")
def tiny_network():
    """SPQ needs one Dijkstra per node, so these schemes get a tiny network."""
    return generate_road_network(GeneratorConfig(num_nodes=150, num_edges=340, seed=31))


@pytest.fixture(scope="module")
def hiti_scheme(tiny_network):
    return HiTiBroadcastScheme(tiny_network, num_regions=8)


@pytest.fixture(scope="module")
def spq_scheme(tiny_network):
    return SPQBroadcastScheme(tiny_network)


class TestCycleSizes:
    def test_hiti_index_is_a_substantial_share_of_the_cycle(self, hiti_scheme):
        """Table 1 / Section 3.2: HiTi broadcasts voluminous pre-computed
        distances on top of the network data.  (At the tiny scale used in the
        unit tests the index is "only" comparable to the data; the full-scale
        benchmark shows it dwarfing the network, as in the paper.)"""
        composition = hiti_scheme.cycle.composition()
        index_packets = composition.get(SegmentKind.INDEX.value, 0)
        data_packets = sum(
            packets
            for kind, packets in composition.items()
            if kind != SegmentKind.INDEX.value
        )
        assert index_packets > 0.5 * data_packets

    def test_spq_precomputed_larger_than_network_data(self, spq_scheme):
        composition = spq_scheme.cycle.composition()
        assert composition[SegmentKind.PRECOMPUTED.value] > composition[SegmentKind.NETWORK_DATA.value]

    def test_hiti_and_spq_have_longest_cycles(self, tiny_network, hiti_scheme, spq_scheme):
        from repro.air import DijkstraBroadcastScheme, NextRegionScheme

        dj = DijkstraBroadcastScheme(tiny_network)
        nr = NextRegionScheme(tiny_network, num_regions=8)
        assert hiti_scheme.cycle.total_packets > nr.cycle.total_packets
        assert spq_scheme.cycle.total_packets > dj.cycle.total_packets


class TestQueries:
    def test_hiti_distances_match_ground_truth(self, hiti_scheme, tiny_network):
        nodes = tiny_network.node_ids()
        pairs = [(nodes[0], nodes[-1]), (nodes[3], nodes[20]), (nodes[7], nodes[50])]
        client = hiti_scheme.client()
        for source, target in pairs:
            expected = shortest_path(tiny_network, source, target).distance
            assert client.query(source, target).distance == pytest.approx(expected)

    def test_spq_distances_match_ground_truth(self, spq_scheme, tiny_network):
        nodes = tiny_network.node_ids()
        pairs = [(nodes[1], nodes[-2]), (nodes[5], nodes[30])]
        client = spq_scheme.client()
        for source, target in pairs:
            expected = shortest_path(tiny_network, source, target).distance
            assert client.query(source, target).distance == pytest.approx(expected)

    def test_hiti_receives_only_endpoint_regions(self, hiti_scheme, tiny_network):
        nodes = tiny_network.node_ids()
        result = hiti_scheme.client().query(nodes[0], nodes[-1])
        partitioning = hiti_scheme.partitioning
        expected = sorted({partitioning.region_of(nodes[0]), partitioning.region_of(nodes[-1])})
        assert result.received_regions == expected

    def test_hiti_memory_includes_whole_index(self, hiti_scheme, tiny_network):
        nodes = tiny_network.node_ids()
        result = hiti_scheme.client().query(nodes[2], nodes[-3])
        index_bytes = hiti_scheme.cycle.segment("hiti-index").size_bytes
        assert result.metrics.peak_memory_bytes >= index_bytes

    def test_spq_tuning_is_full_cycle(self, spq_scheme, tiny_network):
        nodes = tiny_network.node_ids()
        result = spq_scheme.client().query(nodes[0], nodes[-1])
        assert result.metrics.tuning_time_packets == spq_scheme.cycle.total_packets
