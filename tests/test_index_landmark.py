"""Unit tests for the Landmark (ALT) index."""

import random

import pytest

from repro.index.landmark import (
    LandmarkIndex,
    select_landmarks_farthest,
    select_landmarks_random,
)
from repro.network.algorithms.dijkstra import shortest_path


@pytest.fixture(scope="module")
def landmark_index(small_network):
    return LandmarkIndex(small_network, num_landmarks=4)


class TestLandmarkSelection:
    def test_farthest_selection_returns_requested_count(self, small_network):
        assert len(select_landmarks_farthest(small_network, 5)) == 5

    def test_farthest_selection_is_spread_out(self, small_network):
        landmarks = select_landmarks_farthest(small_network, 3)
        assert len(set(landmarks)) == 3

    def test_random_selection_deterministic_per_seed(self, small_network):
        assert select_landmarks_random(small_network, 4, seed=1) == select_landmarks_random(
            small_network, 4, seed=1
        )

    def test_random_selection_caps_at_network_size(self, grid_network):
        landmarks = select_landmarks_random(grid_network, 10_000, seed=0)
        assert len(landmarks) == grid_network.num_nodes

    def test_invalid_count_rejected(self, small_network):
        with pytest.raises(ValueError):
            select_landmarks_farthest(small_network, 0)


class TestLowerBound:
    def test_lower_bound_is_admissible(self, small_network, landmark_index):
        rng = random.Random(10)
        nodes = small_network.node_ids()
        for _ in range(30):
            a, b = rng.choice(nodes), rng.choice(nodes)
            true_distance = shortest_path(small_network, a, b).distance
            assert landmark_index.lower_bound(a, b) <= true_distance + 1e-9

    def test_lower_bound_non_negative(self, small_network, landmark_index):
        rng = random.Random(11)
        nodes = small_network.node_ids()
        for _ in range(20):
            a, b = rng.choice(nodes), rng.choice(nodes)
            assert landmark_index.lower_bound(a, b) >= 0.0

    def test_lower_bound_to_self_is_zero(self, small_network, landmark_index):
        for node in small_network.node_ids()[:10]:
            assert landmark_index.lower_bound(node, node) == pytest.approx(0.0)


class TestQuery:
    def test_matches_dijkstra(self, small_network, landmark_index):
        rng = random.Random(12)
        nodes = small_network.node_ids()
        for _ in range(25):
            source, target = rng.choice(nodes), rng.choice(nodes)
            expected = shortest_path(small_network, source, target).distance
            assert landmark_index.query(source, target).distance == pytest.approx(expected)

    def test_guided_search_settles_no_more_than_dijkstra(self, small_network, landmark_index):
        rng = random.Random(13)
        nodes = small_network.node_ids()
        plain_total = 0
        guided_total = 0
        for _ in range(15):
            source, target = rng.choice(nodes), rng.choice(nodes)
            plain_total += shortest_path(small_network, source, target).settled
            guided_total += landmark_index.query(source, target).settled
        assert guided_total <= plain_total


class TestSizing:
    def test_distance_vector_length(self, landmark_index, small_network):
        node = small_network.node_ids()[0]
        assert len(landmark_index.distance_vector(node)) == 2 * landmark_index.num_landmarks

    def test_vector_bytes_per_node(self, landmark_index):
        assert landmark_index.vector_bytes_per_node() == 2 * 4 * 4

    def test_total_size(self, landmark_index, small_network):
        assert landmark_index.size_bytes() == small_network.num_nodes * 32
