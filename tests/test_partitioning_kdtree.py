"""Unit tests for kd-tree partitioning (paper Section 4.1, Figure 2)."""

import random

import pytest

from repro.partitioning.kdtree import KDTreePartitioner, build_kdtree_partitioning


class TestBuild:
    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            KDTreePartitioner.build([(0, 0), (1, 1)], 3)

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            KDTreePartitioner.build([], 4)

    def test_single_region_maps_everything_to_zero(self):
        partitioner = KDTreePartitioner.build([(0, 0), (5, 5), (9, 1)], 1)
        assert partitioner.num_regions == 1
        assert partitioner.locate(100, -100) == 0

    def test_regions_cover_all_points(self):
        rng = random.Random(1)
        points = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(200)]
        partitioner = KDTreePartitioner.build(points, 16)
        regions = {partitioner.locate(x, y) for x, y in points}
        assert regions <= set(range(16))
        # Median splits over 200 points should populate every leaf.
        assert len(regions) == 16

    def test_region_ids_in_range_for_arbitrary_queries(self):
        rng = random.Random(2)
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(64)]
        partitioner = KDTreePartitioner.build(points, 8)
        for _ in range(100):
            region = partitioner.locate(rng.uniform(-5, 15), rng.uniform(-5, 15))
            assert 0 <= region < 8

    def test_median_split_balances_leaf_populations(self):
        rng = random.Random(3)
        points = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(256)]
        partitioner = KDTreePartitioner.build(points, 16)
        counts = [0] * 16
        for x, y in points:
            counts[partitioner.locate(x, y)] += 1
        assert max(counts) <= 2 * (256 // 16) + 2


class TestSplittingValues:
    def test_number_of_splitting_values(self):
        rng = random.Random(4)
        points = [(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(100)]
        for regions in (2, 4, 8, 16, 32):
            partitioner = KDTreePartitioner.build(points, regions)
            assert len(partitioner.splitting_values()) == regions - 1

    def test_first_split_is_median_y(self):
        points = [(float(i), float(i % 7)) for i in range(21)]
        partitioner = KDTreePartitioner.build(points, 2)
        ys = sorted(y for _, y in points)
        assert partitioner.splitting_values()[0] == ys[(len(ys) - 1) // 2]

    def test_reconstruction_matches_original_locator(self):
        rng = random.Random(5)
        points = [(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(300)]
        original = KDTreePartitioner.build(points, 32)
        rebuilt = KDTreePartitioner.from_splitting_values(
            original.splitting_values(), 32
        )
        for _ in range(200):
            x, y = rng.uniform(-100, 1100), rng.uniform(-100, 1100)
            assert original.locate(x, y) == rebuilt.locate(x, y)

    def test_reconstruction_validates_length(self):
        with pytest.raises(ValueError):
            KDTreePartitioner.from_splitting_values([1.0, 2.0], 4)

    def test_reconstruction_validates_power_of_two(self):
        with pytest.raises(ValueError):
            KDTreePartitioner.from_splitting_values([1.0, 2.0], 3)


class TestNetworkPartitioning:
    def test_partitioning_assigns_every_node(self, small_network):
        partitioning = build_kdtree_partitioning(small_network, 16)
        assert sum(partitioning.region_sizes()) == small_network.num_nodes

    def test_paper_example_region_numbering_is_left_to_right(self):
        # Four points in four quadrants; with 4 regions the numbering must
        # follow the leaf order (bottom-left first within the left subtree).
        points = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)]
        partitioner = KDTreePartitioner.build(points, 4)
        regions = [partitioner.locate(x, y) for x, y in points]
        assert sorted(regions) == [0, 1, 2, 3]
