"""Unit tests for metric accounting."""

import pytest

from repro.broadcast.device import CHANNEL_2MBPS, J2ME_CLAMSHELL
from repro.broadcast.metrics import (
    ClientMetrics,
    MemoryTracker,
    ServerMetrics,
    average_metrics,
)


class TestMemoryTracker:
    def test_peak_tracks_high_water_mark(self):
        tracker = MemoryTracker()
        tracker.allocate(100)
        tracker.allocate(50)
        tracker.release(120)
        tracker.allocate(10)
        assert tracker.current_bytes == 40
        assert tracker.peak_bytes == 150

    def test_release_never_goes_negative(self):
        tracker = MemoryTracker()
        tracker.allocate(10)
        tracker.release(100)
        assert tracker.current_bytes == 0

    def test_negative_amounts_rejected(self):
        tracker = MemoryTracker()
        with pytest.raises(ValueError):
            tracker.allocate(-1)
        with pytest.raises(ValueError):
            tracker.release(-1)


class TestClientMetrics:
    def test_seconds_conversions(self):
        metrics = ClientMetrics(tuning_time_packets=1953, access_latency_packets=3906)
        assert metrics.tuning_time_seconds(CHANNEL_2MBPS) == pytest.approx(1.0, rel=0.01)
        assert metrics.access_latency_seconds(CHANNEL_2MBPS) == pytest.approx(2.0, rel=0.01)

    def test_energy_uses_device_model(self):
        metrics = ClientMetrics(tuning_time_packets=100, access_latency_packets=1000, cpu_seconds=0.5)
        energy = metrics.energy_joules(J2ME_CLAMSHELL, CHANNEL_2MBPS)
        assert energy > 0
        # CPU contribution alone is 0.5 s * 0.2 W = 0.1 J.
        assert energy > 0.1

    def test_fits_device(self):
        assert ClientMetrics(peak_memory_bytes=1000).fits_device(J2ME_CLAMSHELL)
        assert not ClientMetrics(peak_memory_bytes=10**9).fits_device(J2ME_CLAMSHELL)

    def test_merge_max(self):
        a = ClientMetrics(tuning_time_packets=10, peak_memory_bytes=500)
        b = ClientMetrics(tuning_time_packets=5, peak_memory_bytes=900)
        merged = a.merge_max(b)
        assert merged.tuning_time_packets == 10
        assert merged.peak_memory_bytes == 900

    def test_average_metrics(self):
        metrics = [
            ClientMetrics(tuning_time_packets=10, access_latency_packets=20, cpu_seconds=1.0),
            ClientMetrics(tuning_time_packets=20, access_latency_packets=40, cpu_seconds=3.0),
        ]
        mean = average_metrics(metrics)
        assert mean.tuning_time_packets == 15
        assert mean.access_latency_packets == 30
        assert mean.cpu_seconds == pytest.approx(2.0)

    def test_average_of_empty_list(self):
        assert average_metrics([]).tuning_time_packets == 0


class TestServerMetrics:
    def test_cycle_seconds(self):
        server = ServerMetrics(
            scheme="DJ", cycle_packets=1953, cycle_bytes=0, precomputation_seconds=0.0
        )
        assert server.cycle_seconds(CHANNEL_2MBPS) == pytest.approx(1.0, rel=0.01)
