"""Tests for the ingestion pipeline (repro.network.ingest).

Covers the streaming importers (DIMACS ``.gr``/``.co`` and edge-list CSV),
the columnar on-disk edge table, the dict-free CSR build path, the lazy
``ColumnarNetwork`` facade, the engine/CLI entry points, and -- the
strongest check -- a golden-trace replay: the generator's 120-node golden
network, round-tripped through CSV export -> columnar import -> facade,
must reproduce the stored NR broadcast session byte for byte.
"""

from __future__ import annotations

import io
import json
import random

import pytest

from repro.cli import main as cli_main
from repro.engine.system import AirSystem
from repro.network.algorithms import kernel
from repro.network.algorithms.dijkstra import dijkstra_distances, dijkstra_search
from repro.network.csr import CSRGraph, ImmutableSnapshotError
from repro.network.generators import GeneratorConfig, generate_road_network
from repro.network.ingest import (
    ColumnarNetwork,
    IngestError,
    import_csv,
    import_dimacs,
    open_table,
    parquet_available,
)

TINY_GR = """\
c tiny five-node network
p sp 5 7
a 1 2 3
a 2 3 4
a 3 4 1
a 4 5 2
a 5 1 6
a 1 3 9
a 2 5 5
"""

TINY_CO = """\
p aux sp co 5
v 1 0 0
v 2 10 0
v 3 10 10
v 4 0 10
v 5 5 5
"""

TINY_EDGES = [
    (1, 2, 3.0),
    (2, 3, 4.0),
    (3, 4, 1.0),
    (4, 5, 2.0),
    (5, 1, 6.0),
    (1, 3, 9.0),
    (2, 5, 5.0),
]


@pytest.fixture()
def tiny_dimacs(tmp_path):
    gr = tmp_path / "tiny.gr"
    co = tmp_path / "tiny.co"
    gr.write_text(TINY_GR)
    co.write_text(TINY_CO)
    return gr, co


def _write_csv_pair(tmp_path, network):
    """Export a dict network as node/edge CSVs in deterministic order."""
    nodes = tmp_path / "nodes.csv"
    edges = tmp_path / "edges.csv"
    with nodes.open("w") as handle:
        handle.write("id,x,y\n")
        for node in network.nodes():
            handle.write(f"{node.node_id},{node.x!r},{node.y!r}\n")
    with edges.open("w") as handle:
        handle.write("source,target,weight\n")
        for edge in network.edges():
            handle.write(f"{edge.source},{edge.target},{edge.weight!r}\n")
    return nodes, edges


# ----------------------------------------------------------------------
# DIMACS importer
# ----------------------------------------------------------------------
class TestDimacsImport:
    def test_counts_coordinates_and_edge_order(self, tiny_dimacs, tmp_path):
        gr, co = tiny_dimacs
        table = import_dimacs(gr, tmp_path / "table", co_path=co)
        stats = table.stats()
        assert stats["num_nodes"] == 5
        assert stats["num_edges"] == 7
        network = table.to_network()
        assert network.coordinates(2) == (10.0, 0.0)
        assert network.coordinates(5) == (5.0, 5.0)
        # Arcs keep file order inside each node's adjacency.
        assert network.neighbors(1) == [(2, 3.0), (3, 9.0)]
        assert network.neighbors(2) == [(3, 4.0), (5, 5.0)]

    def test_without_coordinate_file_nodes_sit_at_origin(self, tiny_dimacs, tmp_path):
        gr, _ = tiny_dimacs
        table = import_dimacs(gr, tmp_path / "table")
        network = table.to_network()
        assert all(network.coordinates(nid) == (0.0, 0.0) for nid in network.node_ids())
        assert network.num_edges == 7

    def test_fingerprint_matches_dict_network(self, tiny_dimacs, tmp_path):
        gr, co = tiny_dimacs
        table = import_dimacs(gr, tmp_path / "table", co_path=co)
        assert table.fingerprint == table.to_network().fingerprint()

    def test_reimport_is_deterministic(self, tiny_dimacs, tmp_path):
        gr, co = tiny_dimacs
        first = import_dimacs(gr, tmp_path / "a", co_path=co)
        second = import_dimacs(gr, tmp_path / "b", co_path=co)
        assert first.fingerprint == second.fingerprint

    def test_small_chunks_split_files_and_preserve_content(self, tiny_dimacs, tmp_path):
        gr, co = tiny_dimacs
        table = import_dimacs(gr, tmp_path / "table", co_path=co, chunk_rows=2)
        stats = table.stats()
        assert stats["node_chunks"] == 3
        assert stats["edge_chunks"] == 4
        edges = [
            (int(u), int(v), float(w))
            for src, dst, weights in table.iter_edge_chunks()
            for u, v, w in zip(src, dst, weights)
        ]
        assert edges == TINY_EDGES

    def test_zero_arc_graph_still_emits_nodes(self, tmp_path):
        gr = tmp_path / "lonely.gr"
        gr.write_text("p sp 3 0\n")
        table = import_dimacs(gr, tmp_path / "table")
        assert table.stats()["num_nodes"] == 3
        assert table.stats()["num_edges"] == 0

    def test_gzip_transparent_via_cli_format_inference(self, tiny_dimacs, tmp_path):
        gr, co = tiny_dimacs
        buffer = io.StringIO()
        code = cli_main(
            [
                "ingest",
                "--edges",
                str(gr),
                "--nodes",
                str(co),
                "--out",
                str(tmp_path / "table"),
            ],
            out=buffer,
        )
        assert code == 0
        assert "nodes" in buffer.getvalue()
        assert open_table(tmp_path / "table").stats()["num_nodes"] == 5


class TestDimacsMalformed:
    @pytest.mark.parametrize(
        "content, line",
        [
            ("p sp 5 1\np sp 5 1\na 1 2 3\n", 2),  # duplicate problem line
            ("a 1 2 3\n", 1),  # arc before the problem line
            ("p max 5 1\na 1 2 3\n", 1),  # unsupported problem kind
            ("p sp five 1\n", 1),  # non-integer counts
            ("p sp -5 1\n", 1),  # negative counts
            ("p sp 5 1\na 1 2\n", 2),  # short arc line
            ("p sp 5 1\na 1 two 3\n", 2),  # non-numeric arc field
            ("p sp 5 1\na 1 9 3\n", 2),  # endpoint out of range
            ("p sp 5 1\na 0 2 3\n", 2),  # endpoint below range
            ("p sp 5 1\na 1 2 0\n", 2),  # zero weight
            ("p sp 5 1\na 1 2 -4\n", 2),  # negative weight
            ("p sp 5 1\na 1 2 nan\n", 2),  # non-finite weight
            ("p sp 5 1\nq 1 2 3\n", 2),  # unrecognized line kind
        ],
    )
    def test_bad_gr_lines_are_located(self, tmp_path, content, line):
        gr = tmp_path / "bad.gr"
        gr.write_text(content)
        with pytest.raises(IngestError, match=f"bad.gr:{line}"):
            import_dimacs(gr, tmp_path / "table")

    def test_missing_problem_line(self, tmp_path):
        gr = tmp_path / "empty.gr"
        gr.write_text("c nothing here\n")
        with pytest.raises(IngestError, match="no problem"):
            import_dimacs(gr, tmp_path / "table")

    def test_arc_count_mismatch(self, tmp_path):
        gr = tmp_path / "short.gr"
        gr.write_text("p sp 3 2\na 1 2 3\n")
        with pytest.raises(IngestError, match="declares 2 arcs but the file holds 1"):
            import_dimacs(gr, tmp_path / "table")

    @pytest.mark.parametrize(
        "co_content, line",
        [
            ("p aux sp co 9\nv 1 0 0\n", 1),  # node count disagrees with .gr
            ("v 1 0 0\nv 1 1 1\n", 2),  # duplicate node id
            ("v 9 0 0\n", 1),  # id outside declared range
            ("v 1 0\n", 1),  # short coordinate line
            ("v 1 x 0\n", 1),  # non-numeric coordinate
            ("v 1 inf 0\n", 1),  # non-finite coordinate
        ],
    )
    def test_bad_co_lines_are_located(self, tmp_path, co_content, line):
        gr = tmp_path / "ok.gr"
        gr.write_text("p sp 5 1\na 1 2 3\n")
        co = tmp_path / "bad.co"
        co.write_text(co_content)
        with pytest.raises(IngestError, match=f"bad.co:{line}"):
            import_dimacs(gr, tmp_path / "table", co_path=co)


# ----------------------------------------------------------------------
# CSV importer
# ----------------------------------------------------------------------
class TestCsvImport:
    def test_edges_only_implies_node_set_at_origin(self, tmp_path):
        edges = tmp_path / "edges.csv"
        edges.write_text("source,target,weight\n7,3,2.5\n3,9,1.0\n9,7,4.0\n")
        table = import_csv(edges, tmp_path / "table")
        network = table.to_network()
        assert network.node_ids() == [3, 7, 9]
        assert network.coordinates(7) == (0.0, 0.0)
        assert network.edge_weight(7, 3) == 2.5

    def test_declared_nodes_carry_coordinates(self, tmp_path):
        nodes = tmp_path / "nodes.csv"
        nodes.write_text("id,x,y\n1,0.5,1.5\n2,2.0,3.0\n")
        edges = tmp_path / "edges.csv"
        edges.write_text("source,target,weight\n1,2,1.25\n")
        table = import_csv(edges, tmp_path / "table", nodes_path=nodes)
        network = table.to_network()
        assert network.coordinates(1) == (0.5, 1.5)
        assert network.edge_weight(1, 2) == 1.25

    def test_header_sniffing_and_explicit_override(self, tmp_path):
        bare = tmp_path / "bare.csv"
        bare.write_text("1,2,3.0\n2,1,4.0\n")
        assert import_csv(bare, tmp_path / "a").stats()["num_edges"] == 2
        headed = tmp_path / "headed.csv"
        headed.write_text("source,target,weight\n1,2,3.0\n")
        assert (
            import_csv(headed, tmp_path / "b", has_header=True).stats()["num_edges"] == 1
        )

    def test_custom_delimiter(self, tmp_path):
        edges = tmp_path / "edges.ssv"
        edges.write_text("source;target;weight\n1;2;3.0\n")
        table = import_csv(edges, tmp_path / "table", delimiter=";")
        assert table.stats()["num_edges"] == 1

    def test_fingerprint_matches_dict_network(self, tmp_path):
        network = generate_road_network(
            GeneratorConfig(num_nodes=40, num_edges=90, seed=11)
        )
        nodes, edges = _write_csv_pair(tmp_path, network)
        table = import_csv(edges, tmp_path / "table", nodes_path=nodes)
        assert table.fingerprint == network.fingerprint()


class TestCsvMalformed:
    @pytest.mark.parametrize(
        "content, line",
        [
            ("source,target,weight\n1,2\n", 2),  # short row
            ("source,target,weight\n1,x,3.0\n", 2),  # non-numeric field
            ("source,target,weight\n1,2,0.0\n", 2),  # zero weight
            ("source,target,weight\n1,2,-1.0\n", 2),  # negative weight
            ("source,target,weight\n1,2,inf\n", 2),  # non-finite weight
        ],
    )
    def test_bad_edge_rows_are_located(self, tmp_path, content, line):
        edges = tmp_path / "bad.csv"
        edges.write_text(content)
        with pytest.raises(IngestError, match=f"bad.csv:{line}"):
            import_csv(edges, tmp_path / "table")

    def test_dangling_edge_against_declared_nodes(self, tmp_path):
        nodes = tmp_path / "nodes.csv"
        nodes.write_text("id,x,y\n1,0,0\n2,1,1\n")
        edges = tmp_path / "edges.csv"
        edges.write_text("source,target,weight\n1,2,1.0\n1,5,2.0\n")
        with pytest.raises(IngestError, match="edges.csv:3.*dangling"):
            import_csv(edges, tmp_path / "table", nodes_path=nodes)

    @pytest.mark.parametrize(
        "content, line",
        [
            ("id,x,y\n1,0\n", 2),  # short row
            ("id,x,y\n1,a,0\n", 2),  # non-numeric coordinate
            ("id,x,y\n1,nan,0\n", 2),  # non-finite coordinate
            ("id,x,y\n1,0,0\n1,1,1\n", 3),  # duplicate id (later row blamed)
        ],
    )
    def test_bad_node_rows_are_located(self, tmp_path, content, line):
        nodes = tmp_path / "nodes.csv"
        nodes.write_text(content)
        edges = tmp_path / "edges.csv"
        edges.write_text("source,target,weight\n1,1,1.0\n")
        with pytest.raises(IngestError, match=f"nodes.csv:{line}"):
            import_csv(edges, tmp_path / "table", nodes_path=nodes)

    def test_empty_node_file_rejected(self, tmp_path):
        nodes = tmp_path / "nodes.csv"
        nodes.write_text("id,x,y\n")
        edges = tmp_path / "edges.csv"
        edges.write_text("source,target,weight\n1,2,1.0\n")
        with pytest.raises(IngestError, match="no node rows"):
            import_csv(edges, tmp_path / "table", nodes_path=nodes)


# ----------------------------------------------------------------------
# Columnar table
# ----------------------------------------------------------------------
class TestColumnarTable:
    def test_open_table_round_trip(self, tiny_dimacs, tmp_path):
        gr, co = tiny_dimacs
        written = import_dimacs(gr, tmp_path / "table", co_path=co, name="tiny")
        reopened = open_table(tmp_path / "table")
        assert reopened.name == "tiny"
        assert reopened.stats() == written.stats()
        assert reopened.total_bytes() == written.total_bytes()

    def test_verify_passes_then_catches_corruption(self, tiny_dimacs, tmp_path):
        gr, co = tiny_dimacs
        table = import_dimacs(gr, tmp_path / "table", co_path=co)
        table.verify()
        chunk = next((tmp_path / "table").glob("edges-*"))
        blob = bytearray(chunk.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        chunk.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="does not match manifest"):
            open_table(tmp_path / "table").verify()

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_table(tmp_path / "nowhere")

    def test_parquet_gating(self, tiny_dimacs, tmp_path):
        gr, co = tiny_dimacs
        if parquet_available():
            table = import_dimacs(
                gr, tmp_path / "table", co_path=co, use_parquet=True
            )
            assert table.stats()["num_edges"] == 7
        else:
            with pytest.raises(RuntimeError, match="pyarrow"):
                import_dimacs(gr, tmp_path / "table", co_path=co, use_parquet=True)


# ----------------------------------------------------------------------
# Dict-free CSR build
# ----------------------------------------------------------------------
class TestCSRFromColumnar:
    def _assert_identical(self, got: CSRGraph, want: CSRGraph) -> None:
        for field in (
            "ids",
            "fwd_offsets",
            "fwd_targets",
            "fwd_weights",
            "rev_offsets",
            "rev_targets",
            "rev_weights",
        ):
            assert list(getattr(got, field)) == list(getattr(want, field)), field

    def test_bit_identical_to_dict_build_dimacs(self, tiny_dimacs, tmp_path):
        gr, co = tiny_dimacs
        table = import_dimacs(gr, tmp_path / "table", co_path=co, chunk_rows=2)
        self._assert_identical(
            CSRGraph.from_columnar(table), CSRGraph.from_network(table.to_network())
        )

    def test_bit_identical_to_dict_build_sparse_ids(self, tmp_path):
        # Non-contiguous node ids exercise the searchsorted locate path.
        edges = tmp_path / "edges.csv"
        edges.write_text(
            "source,target,weight\n100,7,1.0\n7,4000,2.0\n4000,100,3.0\n100,4000,4.0\n"
        )
        table = import_csv(edges, tmp_path / "table", chunk_rows=2)
        self._assert_identical(
            CSRGraph.from_columnar(table), CSRGraph.from_network(table.to_network())
        )

    def test_edgeless_table_builds(self, tmp_path):
        gr = tmp_path / "lonely.gr"
        gr.write_text("p sp 2 0\n")
        csr = CSRGraph.from_columnar(import_dimacs(gr, tmp_path / "table"))
        assert csr.num_nodes == 2
        assert csr.num_edges == 0
        assert list(csr.fwd_offsets) == [0, 0, 0]

    def test_duplicate_node_ids_rejected(self, tmp_path):
        # Hand-roll a broken table: two node chunks declaring the same id.
        from repro.network.ingest.columnar import ColumnarWriter
        import numpy as np

        writer = ColumnarWriter(tmp_path / "table", "dup")
        writer.append_nodes(
            np.asarray([1, 2], dtype=np.int64),
            np.zeros(2),
            np.zeros(2),
        )
        writer.append_nodes(np.asarray([2], dtype=np.int64), np.zeros(1), np.zeros(1))
        table = writer.finalize()
        with pytest.raises(ValueError, match="duplicate node ids"):
            CSRGraph.from_columnar(table)

    def test_ids_hand_back_plain_ints(self, tiny_dimacs, tmp_path):
        gr, co = tiny_dimacs
        csr = CSRGraph.from_columnar(import_dimacs(gr, tmp_path / "table", co_path=co))
        assert list(csr.ids) == [1, 2, 3, 4, 5]
        assert isinstance(csr.ids[0], int)
        assert csr.index_of[3] == 2


# ----------------------------------------------------------------------
# ColumnarNetwork facade
# ----------------------------------------------------------------------
class TestColumnarNetworkFacade:
    @pytest.fixture()
    def pair(self, tmp_path):
        network = generate_road_network(
            GeneratorConfig(num_nodes=60, num_edges=140, seed=23)
        )
        network.clear_delta()
        nodes, edges = _write_csv_pair(tmp_path, network)
        table = import_csv(edges, tmp_path / "table", nodes_path=nodes, chunk_rows=16)
        return ColumnarNetwork.from_table(table), network

    def test_read_api_matches_dict_network(self, pair):
        facade, network = pair
        assert facade.num_nodes == network.num_nodes
        assert facade.num_edges == network.num_edges
        assert facade.node_ids() == sorted(network.node_ids())
        assert facade.bounding_box() == network.bounding_box()
        for nid in network.node_ids():
            assert facade.coordinates(nid) == network.coordinates(nid)
            assert facade.neighbors(nid) == network.neighbors(nid)
            assert facade.out_degree(nid) == network.out_degree(nid)
            assert facade.in_degree(nid) == network.in_degree(nid)
        assert facade.fingerprint() == network.fingerprint()

    def test_mutation_is_refused(self, pair):
        facade, _ = pair
        for attempt in (
            lambda: facade.add_node(999, 0.0, 0.0),
            lambda: facade.add_edge(1, 2, 1.0),
            lambda: facade.remove_edge(1, 2),
            lambda: facade.update_edge_weight(1, 2, 5.0),
        ):
            with pytest.raises(ImmutableSnapshotError, match="immutable"):
                attempt()

    def test_to_network_materializes_equal_dict_copy(self, pair):
        facade, network = pair
        copy = facade.to_network()
        assert copy.fingerprint() == network.fingerprint()
        copy.update_edge_weight(*_first_edge(copy), 123.0)  # mutable again

    def test_searches_match_dict_reference(self, pair):
        facade, network = pair
        rng = random.Random(5)
        ids = facade.node_ids()
        arena = kernel.arena_for(facade.csr_snapshot())
        for _ in range(8):
            source, target = rng.choice(ids), rng.choice(ids)
            want = dijkstra_search(network, source, target=target)
            got = arena.point_to_point(source, target)
            assert got.distance_to(target) == want.distance_to(target)
        for source in rng.sample(ids, 3):
            want = dijkstra_distances(network, source)
            got = arena.sssp(source)
            assert got.distances_dict() == want.distances
            assert got.predecessors_dict() == want.predecessors


def _first_edge(network):
    edge = next(iter(network.edges()))
    return edge.source, edge.target


# ----------------------------------------------------------------------
# Engine + CLI entry points
# ----------------------------------------------------------------------
class TestEngineAndCli:
    def test_air_system_from_columnar_answers_like_dict_system(self, tmp_path):
        network = generate_road_network(
            GeneratorConfig(num_nodes=50, num_edges=120, seed=9)
        )
        network.clear_delta()
        nodes, edges = _write_csv_pair(tmp_path, network)
        import_csv(edges, tmp_path / "table", nodes_path=nodes)
        columnar = AirSystem.from_columnar(tmp_path / "table")
        direct = AirSystem(network)
        rng = random.Random(3)
        ids = network.node_ids()
        for _ in range(4):
            source, target = rng.choice(ids), rng.choice(ids)
            got = columnar.query("DJ", source, target)
            want = direct.query("DJ", source, target)
            assert got.distance == want.distance
            assert got.found == want.found

    def test_cli_ingest_smoke_with_build(self, tiny_dimacs, tmp_path):
        gr, co = tiny_dimacs
        buffer = io.StringIO()
        code = cli_main(
            [
                "ingest",
                "--edges",
                str(gr),
                "--nodes",
                str(co),
                "--out",
                str(tmp_path / "table"),
                "--build",
            ],
            out=buffer,
        )
        output = buffer.getvalue()
        assert code == 0
        assert "sanity query" in output or "build" in output
        assert open_table(tmp_path / "table").stats()["num_edges"] == 7

    def test_cli_ingest_csv_format(self, tmp_path):
        edges = tmp_path / "edges.csv"
        edges.write_text("source,target,weight\n1,2,3.0\n2,1,4.0\n")
        buffer = io.StringIO()
        code = cli_main(
            [
                "ingest",
                "--edges",
                str(edges),
                "--format",
                "csv",
                "--out",
                str(tmp_path / "table"),
            ],
            out=buffer,
        )
        assert code == 0
        assert open_table(tmp_path / "table").stats()["num_edges"] == 2

    def test_cli_ingest_reports_malformed_input(self, tmp_path):
        gr = tmp_path / "bad.gr"
        gr.write_text("p sp 2 1\na 1 9 3\n")
        buffer = io.StringIO()
        code = cli_main(
            ["ingest", "--edges", str(gr), "--out", str(tmp_path / "table")],
            out=buffer,
        )
        assert code == 1
        assert "ingest error" in buffer.getvalue()
        assert "bad.gr:2" in buffer.getvalue()


# ----------------------------------------------------------------------
# Golden-trace replay through the import path
# ----------------------------------------------------------------------
class TestGoldenReplay:
    def test_imported_golden_network_replays_nr_fixture_byte_for_byte(self, tmp_path):
        """CSV export -> columnar import -> facade reproduces the golden trace.

        The strongest end-to-end statement the ingestion path can make:
        the imported network is not merely equivalent, it drives the NR
        broadcast session to the identical packet stream the repository's
        golden fixture pins down.
        """
        from test_golden_traces import (
            GOLDEN_PARAMS,
            NETWORK_CONFIG,
            TUNE_IN_FRACTION,
            fixture_path,
            golden_network,
            golden_query,
        )
        from repro import air
        from repro.broadcast.replay import RecordingSession

        network = golden_network()
        nodes, edges = _write_csv_pair(tmp_path, network)
        table = import_csv(edges, tmp_path / "table", nodes_path=nodes, chunk_rows=64)
        facade = ColumnarNetwork.from_table(table)
        assert facade.fingerprint() == network.fingerprint()

        stored = json.loads(fixture_path("NR").read_text(encoding="utf-8"))
        params = GOLDEN_PARAMS["NR"]
        scheme = air.create("NR", facade, **params)
        cycle = scheme.cycle
        offset = int(cycle.total_packets * TUNE_IN_FRACTION) % cycle.total_packets
        source, target = golden_query(facade)
        session = RecordingSession(cycle, offset)
        result = scheme.client().query(source, target, session=session)

        assert [source, target, offset] == [
            stored["query"]["source"],
            stored["query"]["target"],
            stored["query"]["tune_in_offset"],
        ]
        assert result.distance == stored["answer"]["distance"]
        assert result.found == stored["answer"]["found"]
        assert result.metrics.tuning_time_packets == stored["metrics"]["tuning_time_packets"]
        assert (
            result.metrics.access_latency_packets
            == stored["metrics"]["access_latency_packets"]
        )
        assert cycle.total_packets == stored["cycle"]["total_packets"]
        replayed = [
            {
                "kind": op.kind.value,
                "name": op.name,
                "packet_count": op.packet_count,
                "last_offset": op.last_offset,
                "anchor": op.anchor,
            }
            for op in session.trace().ops
        ]
        assert replayed == stored["trace"]
        assert facade.num_nodes == stored["network"]["nodes"]
        assert facade.num_edges == stored["network"]["edges"]
        assert facade.fingerprint() == stored["network"]["fingerprint"]
