"""Unit tests for the ArcFlag index."""

import random

import pytest

from repro.index.arcflag import ArcFlagIndex
from repro.network.algorithms.dijkstra import shortest_path
from repro.partitioning.kdtree import build_kdtree_partitioning


@pytest.fixture(scope="module")
def arcflag(small_network):
    partitioning = build_kdtree_partitioning(small_network, 8)
    return ArcFlagIndex(small_network, partitioning)


class TestConstruction:
    def test_every_edge_has_a_flag(self, small_network, arcflag):
        assert len(arcflag.flags) == small_network.num_edges

    def test_intra_region_bit_always_set(self, small_network, arcflag):
        for (source, target), flag in arcflag.flags.items():
            target_region = arcflag.partitioning.region_of(target)
            assert flag & (1 << target_region)

    def test_flag_bytes_per_edge(self, arcflag):
        assert arcflag.flag_bytes_per_edge() == 1  # 8 regions -> 1 byte

    def test_size_bytes(self, small_network, arcflag):
        assert arcflag.size_bytes() == small_network.num_edges * 1

    def test_precomputation_time_recorded(self, arcflag):
        assert arcflag.precomputation_seconds > 0.0


class TestQuery:
    def test_matches_dijkstra_on_random_queries(self, small_network, arcflag):
        rng = random.Random(8)
        nodes = small_network.node_ids()
        for _ in range(25):
            source, target = rng.choice(nodes), rng.choice(nodes)
            expected = shortest_path(small_network, source, target).distance
            assert arcflag.query(source, target).distance == pytest.approx(expected)

    def test_search_prunes_edges(self, small_network, arcflag):
        """ArcFlag should settle no more nodes than plain Dijkstra on average."""
        rng = random.Random(9)
        nodes = small_network.node_ids()
        plain_total = 0
        pruned_total = 0
        for _ in range(15):
            source, target = rng.choice(nodes), rng.choice(nodes)
            plain_total += shortest_path(small_network, source, target).settled
            pruned_total += arcflag.query(source, target).settled
        assert pruned_total <= plain_total

    def test_flag_of_returns_bitmask(self, small_network, arcflag):
        edge = next(iter(small_network.edges()))
        assert arcflag.flag_of(edge.source, edge.target) > 0
