"""Packet loss behaviour across schemes (paper Section 6.2, Figure 14)."""

import pytest

from repro.network.algorithms.dijkstra import shortest_path


LOSS_RATES = [0.01, 0.05, 0.10]


class TestCorrectnessUnderLoss:
    @pytest.mark.parametrize("loss_rate", LOSS_RATES)
    def test_nr_results_unaffected_by_loss(self, nr_scheme, medium_network, query_pairs, loss_rate):
        channel = nr_scheme.channel(loss_rate=loss_rate, seed=41)
        client = nr_scheme.client()
        for source, target in query_pairs[:6]:
            expected = shortest_path(medium_network, source, target).distance
            result = client.query(source, target, channel=channel)
            assert result.distance == pytest.approx(expected)

    @pytest.mark.parametrize("loss_rate", LOSS_RATES)
    def test_eb_results_unaffected_by_loss(self, eb_scheme, medium_network, query_pairs, loss_rate):
        channel = eb_scheme.channel(loss_rate=loss_rate, seed=42)
        client = eb_scheme.client()
        for source, target in query_pairs[:6]:
            expected = shortest_path(medium_network, source, target).distance
            result = client.query(source, target, channel=channel)
            assert result.distance == pytest.approx(expected)

    def test_dijkstra_results_unaffected_by_loss(self, dj_scheme, medium_network, query_pairs):
        channel = dj_scheme.channel(loss_rate=0.05, seed=43)
        client = dj_scheme.client()
        for source, target in query_pairs[:4]:
            expected = shortest_path(medium_network, source, target).distance
            result = client.query(source, target, channel=channel)
            assert result.distance == pytest.approx(expected)

    def test_landmark_results_unaffected_by_loss(self, ld_scheme, medium_network, query_pairs):
        """Lost vectors only degrade the lower bound, never correctness."""
        channel = ld_scheme.channel(loss_rate=0.05, seed=44)
        client = ld_scheme.client()
        for source, target in query_pairs[:4]:
            expected = shortest_path(medium_network, source, target).distance
            result = client.query(source, target, channel=channel)
            assert result.distance == pytest.approx(expected)


class TestDegradation:
    def test_loss_increases_tuning_time_for_full_cycle_methods(self, dj_scheme, query_pairs):
        source, target = query_pairs[0]
        clean = dj_scheme.client().query(
            source, target, channel=dj_scheme.channel(loss_rate=0.0, seed=1)
        )
        lossy = dj_scheme.client().query(
            source, target, channel=dj_scheme.channel(loss_rate=0.10, seed=1)
        )
        assert lossy.metrics.tuning_time_packets > clean.metrics.tuning_time_packets
        assert lossy.metrics.lost_packets > 0

    def test_loss_reported_in_metrics(self, nr_scheme, query_pairs):
        channel = nr_scheme.channel(loss_rate=0.3, seed=7)
        result = nr_scheme.client().query(*query_pairs[0], channel=channel)
        assert result.metrics.lost_packets > 0

    def test_nr_degrades_less_than_dijkstra(self, nr_scheme, dj_scheme, query_pairs):
        """Figure 14's conclusion: the lower the tuning time, the smaller the
        absolute degradation under loss."""
        loss = 0.05

        def total_tuning(scheme, seed):
            channel = scheme.channel(loss_rate=loss, seed=seed)
            client = scheme.client()
            return sum(
                client.query(s, t, channel=channel).metrics.tuning_time_packets
                for s, t in query_pairs[:6]
            )

        def clean_tuning(scheme):
            channel = scheme.channel(loss_rate=0.0, seed=0)
            client = scheme.client()
            return sum(
                client.query(s, t, channel=channel).metrics.tuning_time_packets
                for s, t in query_pairs[:6]
            )

        nr_increase = total_tuning(nr_scheme, 3) - clean_tuning(nr_scheme)
        dj_increase = total_tuning(dj_scheme, 3) - clean_tuning(dj_scheme)
        assert nr_increase <= dj_increase
