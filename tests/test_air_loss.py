"""Packet loss behaviour across schemes (paper Section 6.2, Figure 14)."""

import pytest

from repro.broadcast.channel import ClientSession, PacketLossModel
from repro.engine import AirSystem
from repro.experiments import fleet_uniform_trickle
from repro.fleet import DeviceSpec, simulate_fleet
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.generators import GeneratorConfig, generate_road_network


LOSS_RATES = [0.01, 0.05, 0.10]


class TestCorrectnessUnderLoss:
    @pytest.mark.parametrize("loss_rate", LOSS_RATES)
    def test_nr_results_unaffected_by_loss(self, nr_scheme, medium_network, query_pairs, loss_rate):
        channel = nr_scheme.channel(loss_rate=loss_rate, seed=41)
        client = nr_scheme.client()
        for source, target in query_pairs[:6]:
            expected = shortest_path(medium_network, source, target).distance
            result = client.query(source, target, channel=channel)
            assert result.distance == pytest.approx(expected)

    @pytest.mark.parametrize("loss_rate", LOSS_RATES)
    def test_eb_results_unaffected_by_loss(self, eb_scheme, medium_network, query_pairs, loss_rate):
        channel = eb_scheme.channel(loss_rate=loss_rate, seed=42)
        client = eb_scheme.client()
        for source, target in query_pairs[:6]:
            expected = shortest_path(medium_network, source, target).distance
            result = client.query(source, target, channel=channel)
            assert result.distance == pytest.approx(expected)

    def test_dijkstra_results_unaffected_by_loss(self, dj_scheme, medium_network, query_pairs):
        channel = dj_scheme.channel(loss_rate=0.05, seed=43)
        client = dj_scheme.client()
        for source, target in query_pairs[:4]:
            expected = shortest_path(medium_network, source, target).distance
            result = client.query(source, target, channel=channel)
            assert result.distance == pytest.approx(expected)

    def test_landmark_results_unaffected_by_loss(self, ld_scheme, medium_network, query_pairs):
        """Lost vectors only degrade the lower bound, never correctness."""
        channel = ld_scheme.channel(loss_rate=0.05, seed=44)
        client = ld_scheme.client()
        for source, target in query_pairs[:4]:
            expected = shortest_path(medium_network, source, target).distance
            result = client.query(source, target, channel=channel)
            assert result.distance == pytest.approx(expected)


class TestDegradation:
    def test_loss_increases_tuning_time_for_full_cycle_methods(self, dj_scheme, query_pairs):
        source, target = query_pairs[0]
        clean = dj_scheme.client().query(
            source, target, channel=dj_scheme.channel(loss_rate=0.0, seed=1)
        )
        lossy = dj_scheme.client().query(
            source, target, channel=dj_scheme.channel(loss_rate=0.10, seed=1)
        )
        assert lossy.metrics.tuning_time_packets > clean.metrics.tuning_time_packets
        assert lossy.metrics.lost_packets > 0

    def test_loss_reported_in_metrics(self, nr_scheme, query_pairs):
        channel = nr_scheme.channel(loss_rate=0.3, seed=7)
        result = nr_scheme.client().query(*query_pairs[0], channel=channel)
        assert result.metrics.lost_packets > 0

    def test_nr_degrades_less_than_dijkstra(self, nr_scheme, dj_scheme, query_pairs):
        """Figure 14's conclusion: the lower the tuning time, the smaller the
        absolute degradation under loss."""
        loss = 0.05

        def total_tuning(scheme, seed):
            channel = scheme.channel(loss_rate=loss, seed=seed)
            client = scheme.client()
            return sum(
                client.query(s, t, channel=channel).metrics.tuning_time_packets
                for s, t in query_pairs[:6]
            )

        def clean_tuning(scheme):
            channel = scheme.channel(loss_rate=0.0, seed=0)
            client = scheme.client()
            return sum(
                client.query(s, t, channel=channel).metrics.tuning_time_packets
                for s, t in query_pairs[:6]
            )

        nr_increase = total_tuning(nr_scheme, 3) - clean_tuning(nr_scheme)
        dj_increase = total_tuning(dj_scheme, 3) - clean_tuning(dj_scheme)
        assert nr_increase <= dj_increase


class TestFleetRecoveryUnderLoss:
    """Device recovery on lossy channels, including across a mid-run refresh.

    The fleet simulator sends lossy devices down the native packet-by-packet
    path; these tests pin down that (a) a native outcome is bit-identical to
    a hand-driven client session with the same offset and loss seed, and
    (b) a whole lossy fleet still answers with ground-truth distances both
    before and after an edge-weight update batch refreshes the cycle.
    """

    def test_native_outcome_matches_direct_session(self, nr_scheme, query_pairs):
        source, target = query_pairs[0]
        spec = DeviceSpec(
            device_id=0,
            source=source,
            target=target,
            tune_in_offset=7,
            loss_rate=0.10,
            loss_seed=99,
        )
        run = simulate_fleet(nr_scheme, [spec], seed=0)
        outcome = run.outcomes[0]
        assert outcome.mode == "native"
        assert run.natives == 1 and run.replays == 0

        session = ClientSession(
            nr_scheme.cycle, 7, PacketLossModel(0.10, seed=99)
        )
        direct = nr_scheme.client().query(source, target, session=session)
        assert outcome.distance == direct.distance
        assert outcome.metrics.tuning_time_packets == direct.metrics.tuning_time_packets
        assert outcome.metrics.access_latency_packets == direct.metrics.access_latency_packets
        assert outcome.metrics.lost_packets == direct.metrics.lost_packets

    def test_lossy_fleet_correct_across_weight_update(self):
        config = GeneratorConfig(num_nodes=120, num_edges=280, seed=31)
        network = generate_road_network(config, name="loss-refresh")
        system = AirSystem(network)
        old_fingerprint = network.fingerprint()

        def wave(seed):
            devices = fleet_uniform_trickle(
                network, 24, seed=seed, loss_rate=0.08, with_ground_truth=True
            )
            run = system.simulate_fleet("NR", devices, seed=seed, num_regions=8)
            # Every lossy device goes native and still lands on the truth.
            assert run.natives == len(devices)
            assert run.mismatches == 0
            lost = 0
            for outcome in run.outcomes:
                metrics = outcome.metrics
                assert metrics.tuning_time_packets <= metrics.access_latency_packets
                lost += metrics.lost_packets
            # At 8% loss over whole sessions, packets were actually dropped
            # (otherwise the test is vacuous).
            assert lost > 0
            return run

        wave(seed=9)

        # Mid-run weight update: mutate six edges, refresh the cycle, and
        # re-check the same invariants against the *new* ground truth.
        edges = list(network.edges())[:6]
        updates = [(e.source, e.target, e.weight * 1.6) for e in edges]
        refresh = system.apply_updates(updates)
        assert refresh.num_changes == len(updates)
        assert network.fingerprint() != old_fingerprint

        wave(seed=10)
