"""Additional coverage for smaller public surfaces.

These tests exercise paths the module-focused suites do not: the packaging
metadata, the scheme registry, the row-major (ablation) variant of EB's index
packing, the modern-device profile, and a handful of small helpers.
"""

import pytest

import repro
from repro.air import SCHEME_REGISTRY, EllipticBoundaryScheme
from repro.air.base import QueryResult
from repro.broadcast.device import CHANNEL_2MBPS, MODERN_SMARTPHONE
from repro.broadcast.metrics import ClientMetrics
from repro.network.algorithms.dijkstra import shortest_path
from repro.spatial.dsi import DistributedSpatialIndexScheme
from repro.spatial.points import PointObject, bounding_box, generate_points


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert repro.__version__.count(".") == 2

    def test_top_level_exports(self):
        for name in ("air", "broadcast", "network", "partitioning", "spatial", "experiments"):
            assert hasattr(repro, name)

    def test_scheme_registry_covers_all_paper_methods(self):
        assert set(SCHEME_REGISTRY) == {"DJ", "AF", "LD", "HiTi", "SPQ", "EB", "NR"}

    def test_scheme_registry_short_names_match_keys(self):
        for key, cls in SCHEME_REGISTRY.items():
            assert cls.short_name == key


class TestQueryResult:
    def test_found_flag(self):
        assert QueryResult(source=1, target=2, distance=3.0).found
        assert not QueryResult(source=1, target=2, distance=float("inf")).found

    def test_default_metrics(self):
        result = QueryResult(source=1, target=2, distance=0.0)
        assert isinstance(result.metrics, ClientMetrics)
        assert result.received_regions == []


class TestModernDevice:
    def test_larger_heap_than_paper_device(self):
        from repro.broadcast.device import J2ME_CLAMSHELL

        assert MODERN_SMARTPHONE.heap_bytes > J2ME_CLAMSHELL.heap_bytes

    def test_energy_model_still_charges_reception(self):
        energy = MODERN_SMARTPHONE.energy_joules(1000, 2000, 0.01, CHANNEL_2MBPS)
        assert energy > 0.0


class TestEBRowMajorPackingVariant:
    def test_row_major_scheme_still_answers_correctly(self, medium_network, query_pairs):
        scheme = EllipticBoundaryScheme(
            medium_network, num_regions=16, square_packing=False
        )
        client = scheme.client()
        for source, target in query_pairs[:4]:
            expected = shortest_path(medium_network, source, target).distance
            assert client.query(source, target).distance == pytest.approx(expected)

    def test_row_major_needed_packets_cover_more_of_the_index(self, medium_network):
        square = EllipticBoundaryScheme(medium_network, num_regions=16, square_packing=True)
        row_major = EllipticBoundaryScheme(
            medium_network, num_regions=16, square_packing=False
        )
        square_needed = len(square.needed_index_packets(0, 15))
        row_needed = len(row_major.needed_index_packets(0, 15))
        assert square_needed <= row_needed


class TestSpatialHelpers:
    def test_bounding_box(self):
        points = [PointObject(0, 1.0, 2.0), PointObject(1, -3.0, 7.0)]
        assert bounding_box(points) == (-3.0, 2.0, 1.0, 7.0)

    def test_bounding_box_empty_rejected(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_point_distance(self):
        assert PointObject(0, 0.0, 0.0).distance_to(3.0, 4.0) == pytest.approx(5.0)

    def test_dsi_pointer_targets_are_exponential(self):
        scheme = DistributedSpatialIndexScheme(generate_points(64, seed=1), num_frames=16)
        targets = scheme.pointer_targets(0)
        assert targets == [1, 2, 4, 8]

    def test_dsi_pointer_targets_wrap(self):
        scheme = DistributedSpatialIndexScheme(generate_points(64, seed=1), num_frames=16)
        targets = scheme.pointer_targets(15)
        assert targets == [0, 1, 3, 7]


class TestDatasetSeeds:
    def test_different_seeds_give_different_networks(self):
        from repro.network import datasets

        a = datasets.load("milan", scale=0.01, seed=1)
        b = datasets.load("milan", scale=0.01, seed=2)
        edges_a = sorted((e.source, e.target, round(e.weight, 6)) for e in a.edges())
        edges_b = sorted((e.source, e.target, round(e.weight, 6)) for e in b.edges())
        assert edges_a != edges_b
