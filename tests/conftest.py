"""Shared fixtures.

Expensive artifacts (synthetic networks, pre-computed schemes) are session
scoped so the suite builds each of them exactly once.
"""

from __future__ import annotations

import random

import pytest

from repro.air import (
    ArcFlagBroadcastScheme,
    DijkstraBroadcastScheme,
    EllipticBoundaryScheme,
    LandmarkBroadcastScheme,
    NextRegionScheme,
)
from repro.network.generators import GeneratorConfig, generate_grid_network, generate_road_network
from repro.partitioning.kdtree import build_kdtree_partitioning


@pytest.fixture(scope="session")
def grid_network():
    """A 6x6 bidirectional grid with unit-ish weights (easy to reason about)."""
    return generate_grid_network(rows=6, cols=6, extent=500.0, seed=1, name="grid-6x6")


@pytest.fixture(scope="session")
def small_network():
    """A ~200-node synthetic road network used by most unit tests."""
    config = GeneratorConfig(num_nodes=200, num_edges=460, seed=11)
    return generate_road_network(config, name="small-synthetic")


@pytest.fixture(scope="session")
def medium_network():
    """A ~420-node synthetic road network used by the integration tests."""
    config = GeneratorConfig(num_nodes=420, num_edges=980, seed=23)
    return generate_road_network(config, name="medium-synthetic")


@pytest.fixture(scope="session")
def small_partitioning(small_network):
    """16-region kd partitioning of the small network."""
    return build_kdtree_partitioning(small_network, 16)


@pytest.fixture(scope="session")
def eb_scheme(medium_network):
    """An Elliptic Boundary scheme over the medium network (16 regions)."""
    return EllipticBoundaryScheme(medium_network, num_regions=16)


@pytest.fixture(scope="session")
def nr_scheme(medium_network):
    """A Next Region scheme over the medium network (16 regions)."""
    return NextRegionScheme(medium_network, num_regions=16)


@pytest.fixture(scope="session")
def dj_scheme(medium_network):
    """The Dijkstra full-cycle adaptation over the medium network."""
    return DijkstraBroadcastScheme(medium_network)


@pytest.fixture(scope="session")
def ld_scheme(medium_network):
    """The Landmark full-cycle adaptation over the medium network."""
    return LandmarkBroadcastScheme(medium_network, num_landmarks=4)


@pytest.fixture(scope="session")
def af_scheme(medium_network):
    """The ArcFlag full-cycle adaptation over the medium network."""
    return ArcFlagBroadcastScheme(medium_network, num_regions=8)


@pytest.fixture(scope="session")
def query_pairs(medium_network):
    """A deterministic set of 15 random connected query pairs."""
    rng = random.Random(5)
    nodes = medium_network.node_ids()
    pairs = []
    while len(pairs) < 15:
        source, target = rng.choice(nodes), rng.choice(nodes)
        if source != target:
            pairs.append((source, target))
    return pairs
