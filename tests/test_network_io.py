"""Unit tests for road-network persistence."""

import pytest

from repro.network.generators import GeneratorConfig, generate_road_network
from repro.network.io import load_network, save_network


class TestRoundTrip:
    def test_round_trip_preserves_topology(self, tmp_path):
        network = generate_road_network(GeneratorConfig(num_nodes=80, num_edges=180, seed=3))
        path = tmp_path / "network.txt"
        save_network(network, path)
        restored = load_network(path)
        assert restored.num_nodes == network.num_nodes
        assert restored.num_edges == network.num_edges
        original_edges = sorted((e.source, e.target, e.weight) for e in network.edges())
        restored_edges = sorted((e.source, e.target, e.weight) for e in restored.edges())
        assert restored_edges == original_edges

    def test_round_trip_preserves_coordinates_exactly(self, tmp_path):
        network = generate_road_network(GeneratorConfig(num_nodes=60, num_edges=140, seed=4))
        path = tmp_path / "network.txt"
        save_network(network, path)
        restored = load_network(path)
        for node in network.nodes():
            assert restored.node(node.node_id).x == node.x
            assert restored.node(node.node_id).y == node.y

    def test_load_assigns_name(self, tmp_path):
        network = generate_road_network(GeneratorConfig(num_nodes=50, num_edges=110, seed=5))
        path = tmp_path / "net.rn"
        save_network(network, path)
        assert load_network(path, name="custom").name == "custom"
        assert load_network(path).name == "net.rn"

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "broken.txt"
        path.write_text("n 1 0.0 0.0\nx whatever\n")
        with pytest.raises(ValueError, match="broken.txt:2"):
            load_network(path)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "net.txt"
        path.write_text("# header\n\nn 1 0.0 0.0\nn 2 1.0 0.0\ne 1 2 2.0\n")
        network = load_network(path)
        assert network.num_nodes == 2
        assert network.edge_weight(1, 2) == 2.0


class TestValidation:
    """Regression corpus for the {path}:{line} validation sweep."""

    def _load_expecting(self, tmp_path, content, location, fragment):
        path = tmp_path / "net.txt"
        path.write_text(content)
        with pytest.raises(ValueError) as excinfo:
            load_network(path)
        message = str(excinfo.value)
        assert f"net.txt:{location}" in message
        assert fragment in message

    def test_duplicate_node_id(self, tmp_path):
        self._load_expecting(
            tmp_path,
            "n 1 0.0 0.0\nn 1 1.0 1.0\n",
            2,
            "duplicate node id 1",
        )

    def test_edge_references_undeclared_node(self, tmp_path):
        self._load_expecting(
            tmp_path,
            "n 1 0.0 0.0\ne 1 9 2.0\n",
            2,
            "undeclared node 9",
        )

    def test_non_finite_coordinates(self, tmp_path):
        self._load_expecting(
            tmp_path,
            "n 1 nan 0.0\n",
            1,
            "non-finite coordinates",
        )
        self._load_expecting(
            tmp_path,
            "n 1 0.0 inf\n",
            1,
            "non-finite coordinates",
        )

    def test_non_finite_weight(self, tmp_path):
        self._load_expecting(
            tmp_path,
            "n 1 0.0 0.0\nn 2 1.0 0.0\ne 1 2 nan\n",
            3,
            "non-finite weight",
        )

    def test_malformed_node_and_edge_lines(self, tmp_path):
        self._load_expecting(tmp_path, "n 1 zero 0.0\n", 1, "malformed node line")
        self._load_expecting(
            tmp_path,
            "n 1 0.0 0.0\nn 2 1.0 0.0\ne 1 2 heavy\n",
            3,
            "malformed edge line",
        )
