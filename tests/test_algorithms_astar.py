"""Unit tests for A* search."""

import random

import pytest

from repro.network.algorithms.astar import astar_search
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.algorithms.paths import INFINITY


class TestAStar:
    def test_zero_heuristic_equals_dijkstra(self, small_network):
        rng = random.Random(3)
        nodes = small_network.node_ids()
        for _ in range(10):
            source, target = rng.choice(nodes), rng.choice(nodes)
            expected = shortest_path(small_network, source, target).distance
            assert astar_search(small_network, source, target).distance == pytest.approx(expected)

    def test_admissible_heuristic_preserves_optimality(self, small_network):
        # A scaled-down Euclidean distance is admissible on this generator
        # because edge weights never drop below 70% of the Euclidean length
        # and highways never below 60%.
        def heuristic(node, target):
            return 0.5 * small_network.euclidean_distance(node, target)

        rng = random.Random(4)
        nodes = small_network.node_ids()
        for _ in range(10):
            source, target = rng.choice(nodes), rng.choice(nodes)
            expected = shortest_path(small_network, source, target).distance
            result = astar_search(small_network, source, target, lower_bound=heuristic)
            assert result.distance == pytest.approx(expected)

    def test_good_heuristic_settles_fewer_nodes(self, small_network):
        def heuristic(node, target):
            return 0.5 * small_network.euclidean_distance(node, target)

        nodes = small_network.node_ids()
        source, target = nodes[0], nodes[-1]
        plain = astar_search(small_network, source, target)
        guided = astar_search(small_network, source, target, lower_bound=heuristic)
        assert guided.settled <= plain.settled
        assert guided.distance == pytest.approx(plain.distance)

    def test_edge_filter_blocks_paths(self, grid_network):
        nodes = grid_network.node_ids()
        source, target = nodes[0], nodes[-1]
        blocked = astar_search(grid_network, source, target, edge_filter=lambda u, v: False)
        assert blocked.distance == INFINITY

    def test_edge_filter_allows_unrelated_edges(self, grid_network):
        nodes = grid_network.node_ids()
        source, target = nodes[0], nodes[-1]
        unfiltered = astar_search(grid_network, source, target)
        filtered = astar_search(
            grid_network, source, target, edge_filter=lambda u, v: True
        )
        assert filtered.distance == pytest.approx(unfiltered.distance)

    def test_unknown_endpoint_raises(self, grid_network):
        with pytest.raises(KeyError):
            astar_search(grid_network, -1, 0)
        with pytest.raises(KeyError):
            astar_search(grid_network, 0, 10_000)
