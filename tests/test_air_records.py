"""Unit tests for on-air record sizing."""

import pytest

from repro.air.records import DEFAULT_LAYOUT, RecordLayout


class TestAdjacencySizing:
    def test_node_record_bytes_grows_with_degree(self):
        assert DEFAULT_LAYOUT.node_record_bytes(3) > DEFAULT_LAYOUT.node_record_bytes(1)

    def test_node_record_formula(self):
        layout = RecordLayout()
        # id + 2 coords + degree byte + 2 * (id + weight)
        assert layout.node_record_bytes(2) == 4 + 8 + 1 + 2 * 8

    def test_adjacency_bytes_sums_over_nodes(self, small_network):
        total = DEFAULT_LAYOUT.adjacency_bytes(small_network)
        partial = DEFAULT_LAYOUT.adjacency_bytes(small_network, small_network.node_ids()[:10])
        assert 0 < partial < total

    def test_adjacency_bytes_matches_manual_sum(self, small_network):
        nodes = small_network.node_ids()[:5]
        expected = sum(
            DEFAULT_LAYOUT.node_record_bytes(small_network.out_degree(n)) for n in nodes
        )
        assert DEFAULT_LAYOUT.adjacency_bytes(small_network, nodes) == expected


class TestIndexSizing:
    def test_landmark_vector_bytes(self):
        assert DEFAULT_LAYOUT.landmark_vector_bytes(4) == 32

    def test_arcflag_bytes_per_edge(self):
        assert DEFAULT_LAYOUT.arcflag_bytes_per_edge(16) == 32

    def test_kd_split_bytes(self):
        assert DEFAULT_LAYOUT.kd_split_bytes(32) == 31 * 4
        assert DEFAULT_LAYOUT.kd_split_bytes(1) == 0

    def test_eb_index_bytes(self):
        # splits + n*n*(min,max) + offsets
        expected = 31 * 4 + 32 * 32 * 8 + 32 * 4
        assert DEFAULT_LAYOUT.eb_index_bytes(32) == expected

    def test_nr_local_index_bytes(self):
        expected = 31 * 4 + 32 * 32 * 1
        assert DEFAULT_LAYOUT.nr_local_index_bytes(32) == expected

    def test_nr_index_much_smaller_than_eb_index(self):
        """The design reason NR does not need (1, m) replication."""
        assert DEFAULT_LAYOUT.nr_local_index_bytes(32) < DEFAULT_LAYOUT.eb_index_bytes(32) / 5

    def test_cells_per_packet_positive(self):
        assert DEFAULT_LAYOUT.eb_cells_per_packet() >= 1
        assert DEFAULT_LAYOUT.nr_cells_per_packet() >= DEFAULT_LAYOUT.eb_cells_per_packet()

    def test_hiti_super_edge_bytes(self):
        assert DEFAULT_LAYOUT.hiti_super_edge_bytes() == 12

    def test_spq_bytes(self):
        assert DEFAULT_LAYOUT.spq_bytes(100) == 400
