"""Unit tests for device profiles and channel rates."""

import pytest

from repro.broadcast.device import (
    CHANNEL_2MBPS,
    CHANNEL_384KBPS,
    ChannelRate,
    DeviceProfile,
    J2ME_CLAMSHELL,
)


class TestChannelRate:
    def test_packets_per_second_2mbps(self):
        # 2 Mbps / (128 bytes * 8 bits) = 1953.125 packets per second.
        assert CHANNEL_2MBPS.packets_per_second == pytest.approx(1953.125)

    def test_packets_to_seconds(self):
        assert CHANNEL_384KBPS.packets_to_seconds(375) == pytest.approx(1.0)

    def test_paper_table1_dijkstra_cycle_duration(self):
        """Table 1: 14019 packets take ~6.8 s at 2 Mbps and ~40 s at 384 Kbps."""
        assert CHANNEL_2MBPS.packets_to_seconds(14_019) == pytest.approx(7.18, rel=0.1)
        assert CHANNEL_384KBPS.packets_to_seconds(14_019) == pytest.approx(37.4, rel=0.1)


class TestDeviceProfile:
    def test_paper_heap_size(self):
        assert J2ME_CLAMSHELL.heap_bytes == 8 * 1024 * 1024

    def test_fits_in_heap(self):
        assert J2ME_CLAMSHELL.fits_in_heap(1024)
        assert not J2ME_CLAMSHELL.fits_in_heap(9 * 1024 * 1024)

    def test_energy_increases_with_tuning(self):
        low = J2ME_CLAMSHELL.energy_joules(100, 1000, 0.01, CHANNEL_2MBPS)
        high = J2ME_CLAMSHELL.energy_joules(900, 1000, 0.01, CHANNEL_2MBPS)
        assert high > low

    def test_receive_power_dominates_sleep(self):
        """Receiving n packets must cost much more than sleeping through them."""
        receiving = J2ME_CLAMSHELL.energy_joules(1000, 1000, 0.0, CHANNEL_2MBPS)
        sleeping = J2ME_CLAMSHELL.energy_joules(0, 1000, 0.0, CHANNEL_2MBPS)
        assert receiving > 10 * sleeping

    def test_custom_profile(self):
        device = DeviceProfile(name="test", heap_bytes=100)
        assert device.fits_in_heap(100)
        assert not device.fits_in_heap(101)
