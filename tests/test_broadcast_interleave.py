"""Unit tests for (1, m) interleaving."""

import pytest

from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.interleave import interleave_one_m, optimal_m
from repro.broadcast.packet import PACKET_PAYLOAD_BYTES, Segment, SegmentKind


def data_segments(count, packets_each=2):
    return [
        Segment(f"data-{i}", SegmentKind.NETWORK_DATA, packets_each * PACKET_PAYLOAD_BYTES)
        for i in range(count)
    ]


def index_segment(packets=1):
    return Segment("idx", SegmentKind.INDEX, packets * PACKET_PAYLOAD_BYTES)


class TestOptimalM:
    def test_paper_formula(self):
        # m = sqrt(data/index)
        assert optimal_m(100, 4) == 5
        assert optimal_m(81, 1) == 9

    def test_at_least_one(self):
        assert optimal_m(1, 100) == 1
        assert optimal_m(0, 10) == 1

    def test_zero_index_packets(self):
        assert optimal_m(50, 0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            optimal_m(-1, 1)


class TestInterleave:
    def test_single_copy_prepends_index(self):
        segments = interleave_one_m(data_segments(3), [index_segment()], 1)
        assert [s.name for s in segments] == ["idx#copy0", "data-0", "data-1", "data-2"]

    def test_m_copies_emitted(self):
        segments = interleave_one_m(data_segments(8), [index_segment()], 4)
        index_copies = [s for s in segments if s.kind == SegmentKind.INDEX]
        assert len(index_copies) == 4

    def test_copies_have_unique_names(self):
        segments = interleave_one_m(data_segments(6), [index_segment()], 3)
        cycle = BroadcastCycle(segments)  # would raise on duplicates
        assert cycle.total_packets > 0

    def test_data_order_preserved(self):
        segments = interleave_one_m(data_segments(6), [index_segment()], 3)
        data_names = [s.name for s in segments if s.kind == SegmentKind.NETWORK_DATA]
        assert data_names == [f"data-{i}" for i in range(6)]

    def test_m_capped_by_number_of_data_segments(self):
        segments = interleave_one_m(data_segments(2), [index_segment()], 10)
        index_copies = [s for s in segments if s.kind == SegmentKind.INDEX]
        assert len(index_copies) <= 2

    def test_copies_spread_between_groups(self):
        segments = interleave_one_m(data_segments(9), [index_segment()], 3)
        # Between two consecutive index copies there should be roughly 3 data segments.
        positions = [i for i, s in enumerate(segments) if s.kind == SegmentKind.INDEX]
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert all(2 <= gap <= 6 for gap in gaps)

    def test_invalid_m_rejected(self):
        with pytest.raises(ValueError):
            interleave_one_m(data_segments(2), [index_segment()], 0)

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            interleave_one_m([], [index_segment()], 1)
