"""Unit tests for the shared EB/NR border-path pre-computation."""

import random

import pytest

from repro.air.border_paths import BorderPathPrecomputation
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.algorithms.paths import INFINITY
from repro.partitioning.kdtree import build_kdtree_partitioning


@pytest.fixture(scope="module")
def precomputation(small_network, small_partitioning):
    return BorderPathPrecomputation(small_network, small_partitioning)


class TestDistanceMatrix:
    def test_min_never_exceeds_max(self, precomputation):
        n = precomputation.num_regions
        for i in range(n):
            for j in range(n):
                minimum = precomputation.min_distance[i][j]
                maximum = precomputation.max_distance[i][j]
                if maximum != INFINITY:
                    assert minimum <= maximum + 1e-9

    def test_min_distance_matches_direct_computation(self, small_network, small_partitioning, precomputation):
        """Spot-check a few region pairs against brute-force Dijkstra."""
        rng = random.Random(3)
        regions = [r for r in range(small_partitioning.num_regions) if small_partitioning.border_nodes(r)]
        for _ in range(4):
            i, j = rng.choice(regions), rng.choice(regions)
            if i == j:
                continue
            expected = min(
                (
                    shortest_path(small_network, a, b).distance
                    for a in small_partitioning.border_nodes(i)
                    for b in small_partitioning.border_nodes(j)
                ),
                default=INFINITY,
            )
            assert precomputation.min_distance[i][j] == pytest.approx(expected)

    def test_upper_bound_uses_max_entry(self, precomputation):
        assert precomputation.upper_bound(0, 1) == precomputation.max_distance[0][1]


class TestCrossBorderNodes:
    def test_border_nodes_are_cross_border(self, small_partitioning, precomputation):
        for region in range(small_partitioning.num_regions):
            for border in small_partitioning.border_nodes(region):
                assert border in precomputation.cross_border_nodes

    def test_cross_border_plus_local_partitions_each_region(self, small_partitioning, precomputation):
        for region in range(small_partitioning.num_regions):
            cross = set(precomputation.cross_border_in_region(region))
            local = set(precomputation.local_in_region(region))
            assert cross.isdisjoint(local)
            assert cross | local == set(small_partitioning.nodes_in_region(region))


class TestNeededRegions:
    def test_eb_needed_regions_include_endpoints(self, precomputation):
        for i in range(precomputation.num_regions):
            for j in range(precomputation.num_regions):
                needed = precomputation.needed_regions_eb(i, j)
                assert i in needed and j in needed

    def test_nr_needed_regions_subset_of_eb(self, precomputation):
        """NR's traversed-region sets are at least as selective as EB's ellipse."""
        total_nr = 0
        total_eb = 0
        n = precomputation.num_regions
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                total_nr += len(precomputation.needed_regions_nr(i, j))
                total_eb += len(precomputation.needed_regions_eb(i, j))
        assert total_nr <= total_eb

    def test_nr_needed_regions_include_endpoints(self, precomputation):
        for i in range(precomputation.num_regions):
            for j in range(precomputation.num_regions):
                needed = precomputation.needed_regions_nr(i, j)
                assert i in needed and j in needed

    def test_traversed_regions_contain_endpoint_regions_when_reachable(self, precomputation):
        for (i, j), regions in precomputation.traversed_regions.items():
            assert i in regions
            assert j in regions
