"""Unit tests for the synthetic road-network generators."""

import pytest

from repro.network.generators import (
    GeneratorConfig,
    generate_grid_network,
    generate_road_network,
)


class TestGridGenerator:
    def test_node_and_edge_counts(self):
        network = generate_grid_network(rows=4, cols=5, seed=0)
        assert network.num_nodes == 20
        # 4*4 horizontal + 3*5 vertical candidate pairs, both directions.
        assert network.num_edges == 2 * (4 * 4 + 3 * 5)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            generate_grid_network(rows=0, cols=3)

    def test_grid_is_connected(self):
        network = generate_grid_network(rows=5, cols=5, seed=2)
        assert network.is_weakly_connected()

    def test_zero_noise_gives_uniform_row_weights(self):
        network = generate_grid_network(rows=2, cols=3, extent=100.0, seed=3)
        weights = {round(e.weight, 6) for e in network.edges()}
        assert len(weights) <= 2  # horizontal spacing and vertical spacing


class TestRoadGenerator:
    def test_deterministic_for_same_seed(self):
        config = GeneratorConfig(num_nodes=150, num_edges=340, seed=9)
        a = generate_road_network(config)
        b = generate_road_network(config)
        assert a.num_nodes == b.num_nodes
        assert a.num_edges == b.num_edges
        assert sorted((e.source, e.target, round(e.weight, 9)) for e in a.edges()) == sorted(
            (e.source, e.target, round(e.weight, 9)) for e in b.edges()
        )

    def test_different_seeds_differ(self):
        a = generate_road_network(GeneratorConfig(num_nodes=150, num_edges=340, seed=1))
        b = generate_road_network(GeneratorConfig(num_nodes=150, num_edges=340, seed=2))
        edges_a = sorted((e.source, e.target, round(e.weight, 9)) for e in a.edges())
        edges_b = sorted((e.source, e.target, round(e.weight, 9)) for e in b.edges())
        assert edges_a != edges_b

    def test_result_is_connected_and_valid(self):
        network = generate_road_network(GeneratorConfig(num_nodes=300, num_edges=700, seed=4))
        assert network.is_weakly_connected()
        network.validate()

    def test_node_count_close_to_target(self):
        network = generate_road_network(GeneratorConfig(num_nodes=250, num_edges=600, seed=5))
        assert 0.7 * 250 <= network.num_nodes <= 250

    def test_edge_count_close_to_target(self):
        network = generate_road_network(GeneratorConfig(num_nodes=250, num_edges=600, seed=6))
        assert 0.5 * 600 <= network.num_edges <= 1.3 * 600

    def test_low_average_degree_like_road_networks(self):
        network = generate_road_network(GeneratorConfig(num_nodes=400, num_edges=900, seed=7))
        average_out_degree = network.num_edges / network.num_nodes
        assert average_out_degree < 4.0

    def test_weights_positive(self):
        network = generate_road_network(GeneratorConfig(num_nodes=120, num_edges=260, seed=8))
        assert all(e.weight > 0 for e in network.edges())

    def test_too_small_request_rejected(self):
        with pytest.raises(ValueError):
            generate_road_network(GeneratorConfig(num_nodes=2, num_edges=2))
