"""Unit tests for the deterministic fault-injection subsystem.

Everything here is pure plan/clock/runtime mechanics -- no sockets, no
processes.  The contract pinned down: firing decisions are a deterministic
function of ``(plan seed, spec, per-point tick)``; plans round-trip through
JSON unchanged (the wire format of the ``chaos`` op); the process-global
runtime is a no-op without an installed plan; and every curated scenario
builds and reproduces its own decision stream.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.faults import (
    FaultClock,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    SCENARIOS,
    build_scenario,
    scenario_names,
)
from repro.faults import runtime as fault_runtime


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Never let a test leave a process-global plan behind."""
    fault_runtime.clear()
    yield
    fault_runtime.clear()


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(point="")
        with pytest.raises(ValueError):
            FaultSpec(point="x", period=0)
        with pytest.raises(ValueError):
            FaultSpec(point="x", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(point="x", times=0)
        with pytest.raises(ValueError):
            FaultSpec(point="x", after=5, until=5)

    def test_dict_round_trip_through_json(self):
        spec = FaultSpec(
            point="serving.frame.drop",
            after=3,
            until=90,
            period=7,
            probability=0.25,
            times=4,
            params={"latency_ms": 40},
        )
        wired = json.loads(json.dumps(spec.to_dict()))
        assert FaultSpec.from_dict(wired) == spec

    def test_from_dict_defaults(self):
        spec = FaultSpec.from_dict({"point": "p"})
        assert spec == FaultSpec(point="p")


class TestFaultClock:
    def test_points_tick_independently(self):
        clock = FaultClock(seed=1)
        assert [clock.tick("a"), clock.tick("a"), clock.tick("b")] == [0, 1, 0]
        assert clock.ticks("a") == 2
        assert clock.ticks("b") == 1
        assert clock.ticks("never") == 0

    def test_rng_streams_are_per_spec_and_reproducible(self):
        draws = [
            FaultClock(seed=9).rng("p", index).random() for index in (0, 0, 1)
        ]
        # Same (seed, point, spec) -> same stream; different spec -> different.
        assert draws[0] == draws[1]
        assert draws[0] != draws[2]
        assert FaultClock(seed=10).rng("p", 0).random() != draws[0]


class TestFaultPlan:
    def test_window_period_and_budget(self):
        plan = FaultPlan(
            [FaultSpec(point="p", after=2, until=9, period=3, times=2)], seed=0
        )
        fired = [plan.fire("p") is not None for _ in range(12)]
        # Eligible ticks are 2, 5, 8 (after=2, period=3, until=9); the
        # budget of 2 stops the third.
        assert [i for i, f in enumerate(fired) if f] == [2, 5]

    def test_first_matching_spec_wins_and_params_merge(self):
        plan = FaultPlan(
            [
                FaultSpec(point="p", params={"who": "first"}),
                FaultSpec(point="p", params={"who": "second"}),
            ],
            seed=0,
        )
        event = plan.fire("p", op="query", who="site")
        assert event is not None and event.spec_index == 0
        # Spec params override the call-site context.
        assert event.param("who") == "first"
        assert event.param("op") == "query"
        assert event.param("missing", 42) == 42

    def test_probabilistic_firing_is_seed_deterministic(self):
        def stream(seed):
            plan = FaultPlan([FaultSpec(point="p", probability=0.3)], seed=seed)
            return [plan.fire("p") is not None for _ in range(200)]

        first = stream(5)
        assert first == stream(5)
        assert first != stream(6)
        # The probability actually thins the stream (neither all nor none).
        assert 0 < sum(first) < 200

    def test_plan_round_trips_through_json_with_identical_decisions(self):
        plan = FaultPlan(
            [
                FaultSpec(point="a", probability=0.4, times=5),
                FaultSpec(point="b", after=3, period=2),
            ],
            seed=11,
        )
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        for _ in range(50):
            for point in ("a", "b"):
                ours, theirs = plan.fire(point), clone.fire(point)
                assert (ours is None) == (theirs is None)
                if ours is not None:
                    assert (ours.tick, ours.spec_index) == (
                        theirs.tick,
                        theirs.spec_index,
                    )
        assert plan.stats() == clone.stats()

    def test_stats_report_ticks_and_firings(self):
        plan = FaultPlan([FaultSpec(point="p", times=1)], seed=2)
        plan.fire("p")
        plan.fire("p")
        plan.fire("quiet")
        stats = plan.stats()
        assert stats["seed"] == 2
        assert stats["ticks"] == {"p": 2, "quiet": 1}
        assert stats["fired"] == {"p": 1}
        assert stats["total_fired"] == 1

    def test_fire_is_thread_safe(self):
        plan = FaultPlan([FaultSpec(point="p", times=100)], seed=0)
        hits = []

        def hammer():
            for _ in range(100):
                if plan.fire("p") is not None:
                    hits.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The budget is enforced exactly despite racing callers.
        assert len(hits) == 100
        assert plan.stats()["ticks"] == {"p": 800}


class TestRuntime:
    def test_inject_without_plan_is_a_noop(self):
        assert fault_runtime.active() is None
        assert fault_runtime.inject("anything", op="query") is None
        fault_runtime.fail_if("anything")  # must not raise

    def test_install_fire_clear(self):
        plan = fault_runtime.install(
            FaultPlan([FaultSpec(point="p", times=1)], seed=0)
        )
        assert fault_runtime.active() is plan
        event = fault_runtime.inject("p", where="here")
        assert event is not None and event.param("where") == "here"
        assert fault_runtime.inject("p") is None  # budget spent
        fault_runtime.clear()
        assert fault_runtime.active() is None
        assert fault_runtime.inject("p") is None

    def test_fail_if_raises_with_the_event_attached(self):
        fault_runtime.install(
            FaultPlan([FaultSpec(point="boom", times=1, params={"k": 1})], seed=0)
        )
        with pytest.raises(FaultInjected) as excinfo:
            fault_runtime.fail_if("boom")
        assert excinfo.value.event.point == "boom"
        assert excinfo.value.event.param("k") == 1


class TestScenarios:
    def test_registry_is_stable_surface(self):
        assert set(scenario_names()) == set(SCENARIOS) == {
            "smoke",
            "worker-churn",
            "frame-chaos",
            "slow-network",
            "refresh-degraded",
            "hung-worker",
        }

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_builds_and_round_trips(self, name):
        plan = build_scenario(name, seed=13)
        assert isinstance(plan, FaultPlan) and plan.specs
        assert plan.seed == 13
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert [spec.to_dict() for spec in clone.specs] == [
            spec.to_dict() for spec in plan.specs
        ]

    def test_unknown_scenario_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            build_scenario("no-such-thing")
