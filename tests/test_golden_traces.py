"""Golden-trace regression fixtures: one recorded session per scheme.

Each fixture under ``tests/fixtures/golden_traces/`` serializes the full
packet stream (a :class:`~repro.broadcast.replay.SessionTrace`), the answer,
and the channel metrics of one probe session -- a fixed query at a fixed
tune-in offset on a fixed seeded network -- for one registered scheme.  The
tests re-run the identical session and require the freshly rendered JSON to
equal the stored file **byte for byte**: any refactor that changes what a
client receives, in which order, or what it answers shows up as a diff of
the exact operation that moved.

Regenerating (only when a behaviour change is intended and understood)::

    PYTHONPATH=src python tests/fixtures/regen_golden_traces.py

The regen script renders through the same code below, so fixtures and tests
cannot drift apart.
"""

from __future__ import annotations

import json
import pathlib
import random
from typing import Dict

import pytest

from repro import air
from repro.broadcast.replay import RecordingSession
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.algorithms.paths import INFINITY
from repro.network.generators import GeneratorConfig, generate_road_network

FIXTURE_DIR = pathlib.Path(__file__).parent / "fixtures" / "golden_traces"

#: The fixed seeded network every golden trace is recorded on.
NETWORK_CONFIG = dict(num_nodes=120, num_edges=280, seed=97)
#: Cycle fraction at which the probe tunes in.
TUNE_IN_FRACTION = 0.3
#: Per-scheme parameters sized for the 120-node golden network.
GOLDEN_PARAMS: Dict[str, Dict[str, int]] = {
    "DJ": {},
    "NR": {"num_regions": 8},
    "EB": {"num_regions": 8},
    "LD": {"num_landmarks": 2},
    "AF": {"num_regions": 8},
    "SPQ": {"max_depth": 8},
    "HiTi": {"num_regions": 8},
}


def golden_network():
    network = generate_road_network(GeneratorConfig(**NETWORK_CONFIG), name="golden-120")
    network.clear_delta()
    return network


def golden_query(network):
    """The first connected random pair, drawn with a fixed seed."""
    rng = random.Random(1)
    nodes = network.node_ids()
    while True:
        source, target = rng.choice(nodes), rng.choice(nodes)
        if source != target and shortest_path(network, source, target).distance != INFINITY:
            return source, target


def build_golden_payload(scheme_name: str) -> Dict:
    """Record the golden session for one scheme and structure it for JSON."""
    network = golden_network()
    params = GOLDEN_PARAMS[air.canonical_name(scheme_name)]
    scheme = air.create(scheme_name, network, **params)
    cycle = scheme.cycle
    offset = int(cycle.total_packets * TUNE_IN_FRACTION) % cycle.total_packets
    source, target = golden_query(network)
    session = RecordingSession(cycle, offset)
    result = scheme.client().query(source, target, session=session)
    trace = session.trace()
    return {
        "scheme": air.canonical_name(scheme_name),
        "params": dict(sorted(params.items())),
        "network": {
            "generator": dict(sorted(NETWORK_CONFIG.items())),
            "nodes": network.num_nodes,
            "edges": network.num_edges,
            "fingerprint": network.fingerprint(),
        },
        "query": {"source": source, "target": target, "tune_in_offset": offset},
        "answer": {"distance": result.distance, "found": result.found},
        "metrics": {
            "tuning_time_packets": result.metrics.tuning_time_packets,
            "access_latency_packets": result.metrics.access_latency_packets,
        },
        "cycle": {"total_packets": cycle.total_packets, "segments": len(cycle)},
        "trace": [
            {
                "kind": op.kind.value,
                "name": op.name,
                "packet_count": op.packet_count,
                "last_offset": op.last_offset,
                "anchor": op.anchor,
            }
            for op in trace.ops
        ],
    }


def render(payload: Dict) -> str:
    """The canonical fixture text (what the regen script writes)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def fixture_path(scheme_name: str) -> pathlib.Path:
    return FIXTURE_DIR / f"{scheme_name.lower()}.json"


def test_every_registered_scheme_has_a_golden_fixture():
    """New schemes must get a golden trace (regen script adds it)."""
    assert set(GOLDEN_PARAMS) == set(air.available_schemes())
    missing = [name for name in GOLDEN_PARAMS if not fixture_path(name).exists()]
    assert not missing, (
        f"missing golden fixtures for {missing}; run "
        "PYTHONPATH=src python tests/fixtures/regen_golden_traces.py"
    )


@pytest.mark.parametrize("scheme_name", sorted(GOLDEN_PARAMS))
def test_replay_is_byte_stable_against_golden_fixture(scheme_name):
    """The re-recorded session renders to the stored fixture, byte for byte."""
    stored = fixture_path(scheme_name).read_text(encoding="utf-8")
    assert render(build_golden_payload(scheme_name)) == stored


@pytest.mark.parametrize("scheme_name", ["NR", "DJ"])
def test_golden_answer_matches_dijkstra(scheme_name):
    """The stored answers themselves are ground-truth correct."""
    stored = json.loads(fixture_path(scheme_name).read_text(encoding="utf-8"))
    network = golden_network()
    truth = shortest_path(
        network, stored["query"]["source"], stored["query"]["target"]
    ).distance
    assert stored["answer"]["distance"] == pytest.approx(truth, rel=1e-6)
