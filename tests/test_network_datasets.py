"""Unit tests for the paper-network dataset registry."""

import pytest

from repro.network import datasets


class TestRegistry:
    def test_all_five_paper_networks_registered(self):
        assert datasets.available() == [
            "milan",
            "germany",
            "argentina",
            "india",
            "san_francisco",
        ]

    def test_paper_sizes_match_table_2(self):
        assert datasets.spec("germany").num_nodes == 28_867
        assert datasets.spec("germany").num_edges == 30_429
        assert datasets.spec("san_francisco").num_nodes == 174_956
        assert datasets.spec("milan").num_edges == 26_849

    def test_spec_name_normalization(self):
        assert datasets.spec("San Francisco").name == "san_francisco"
        assert datasets.spec("GERMANY").name == "germany"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            datasets.spec("atlantis")

    def test_scaled_spec(self):
        scaled = datasets.spec("germany").scaled(0.1)
        assert scaled.num_nodes == pytest.approx(2887, abs=1)
        assert scaled.num_edges == pytest.approx(3043, abs=1)

    def test_scaled_spec_rejects_non_positive(self):
        with pytest.raises(ValueError):
            datasets.spec("germany").scaled(0)


class TestLoad:
    def test_load_scaled_network_has_expected_size(self):
        network = datasets.load("milan", scale=0.02, seed=1)
        target_nodes = int(round(14_021 * 0.02))
        assert 0.6 * target_nodes <= network.num_nodes <= target_nodes

    def test_load_is_deterministic(self):
        a = datasets.load("milan", scale=0.02, seed=3)
        b = datasets.load("milan", scale=0.02, seed=3)
        assert a.num_nodes == b.num_nodes
        assert a.num_edges == b.num_edges

    def test_different_networks_differ(self):
        milan = datasets.load("milan", scale=0.02, seed=3)
        germany = datasets.load("germany", scale=0.02, seed=3)
        assert milan.num_nodes != germany.num_nodes or milan.num_edges != germany.num_edges

    def test_loaded_network_is_connected(self):
        network = datasets.load("argentina", scale=0.005, seed=2)
        assert network.is_weakly_connected()
