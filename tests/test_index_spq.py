"""Unit tests for the shortest path quad-tree (SPQ) index."""

import random

import pytest

from repro.index.spq import ColoredQuadTree, ShortestPathQuadTreeIndex
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.generators import GeneratorConfig, generate_road_network


@pytest.fixture(scope="module")
def spq_network():
    """A dedicated (tiny) network: SPQ needs one Dijkstra per node."""
    return generate_road_network(GeneratorConfig(num_nodes=120, num_edges=280, seed=17))


@pytest.fixture(scope="module")
def spq(spq_network):
    return ShortestPathQuadTreeIndex(spq_network)


class TestColoredQuadTree:
    def test_uniform_points_collapse_to_one_block(self):
        points = [(float(i), float(i), 3) for i in range(20)]
        tree = ColoredQuadTree(points, (0, 0, 20, 20))
        assert tree.num_blocks == 1
        assert tree.color_at(5, 5) == 3

    def test_mixed_colors_split(self):
        points = [(1.0, 1.0, 0), (9.0, 9.0, 1)]
        tree = ColoredQuadTree(points, (0, 0, 10, 10))
        assert tree.num_blocks > 1
        assert tree.color_at(1.0, 1.0) == 0
        assert tree.color_at(9.0, 9.0) == 1

    def test_empty_tree_returns_sentinel(self):
        tree = ColoredQuadTree([], (0, 0, 10, 10))
        assert tree.color_at(5, 5) == -1

    def test_lookup_returns_stored_color_for_every_point(self):
        rng = random.Random(0)
        points = [
            (rng.uniform(0, 100), rng.uniform(0, 100), rng.randint(0, 3))
            for _ in range(150)
        ]
        tree = ColoredQuadTree(points, (0, 0, 100, 100))
        for x, y, color in points[:50]:
            assert tree.color_at(x, y) == color


class TestIndex:
    def test_quadtree_built_for_every_node(self, spq_network, spq):
        assert len(spq.quadtrees) == spq_network.num_nodes

    def test_total_blocks_and_size(self, spq):
        assert spq.total_blocks() > 0
        assert spq.size_bytes() == 4 * spq.total_blocks()

    def test_query_matches_dijkstra(self, spq_network, spq):
        rng = random.Random(15)
        nodes = spq_network.node_ids()
        for _ in range(20):
            source, target = rng.choice(nodes), rng.choice(nodes)
            expected = shortest_path(spq_network, source, target).distance
            assert spq.query(source, target).distance == pytest.approx(expected)

    def test_query_same_node(self, spq_network, spq):
        node = spq_network.node_ids()[0]
        result = spq.query(node, node)
        assert result.distance == 0.0
        assert result.path == [node]

    def test_query_path_follows_edges(self, spq_network, spq):
        from repro.network.algorithms.paths import validate_path

        nodes = spq_network.node_ids()
        result = spq.query(nodes[0], nodes[-1])
        assert validate_path(spq_network, result.path)
