"""End-to-end resilience tests: the serving path under injected failure.

Complements :mod:`test_serving` (the happy path) and :mod:`test_faults`
(plan mechanics).  Everything here drives a *failure* through the stack and
pins down the recovery contract:

* a half-written or abandoned response frame surfaces as a typed
  ``ProtocolError``/``DeadlineExceeded`` within the socket timeout -- the
  client never hangs on a dying server;
* the circuit breaker trips on transport failures, rejects instantly while
  open, and re-closes through a single half-open probe;
* end-to-end deadlines propagate to workers (expired requests are refused
  server-side) and surface client-side as ``DeadlineExceeded``;
* a worker hung mid-request is evicted within ``hang_timeout_s`` and
  respawned, answering its stuck requests with a typed error;
* a refresh that fails mid-rebuild degrades instead of dying: the old
  cycle keeps serving bit-identical answers flagged ``stale`` until a
  later refresh succeeds with the *cumulative* updates;
* a tampered shared segment is refused at attach time and never serves;
* the ``run_chaos`` driver measures all of the above against a live
  daemon without a single identity violation.
"""

from __future__ import annotations

import contextlib
import dataclasses
import random
import socket
import threading
import time

import pytest

from repro.engine.system import AirSystem
from repro.faults import FaultPlan, FaultSpec, build_scenario
from repro.faults import runtime as fault_runtime
from repro.faults.chaos import run_chaos
from repro.serving import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceeded,
    ProtocolError,
    SegmentIntegrityError,
    ServeConfig,
    ServerError,
    ServerHandle,
    ServingClient,
    SharedArtifactSegment,
)
from repro.serving.protocol import encode_frame, read_frame
from repro.serving.worker import WorkerRuntime


BASE_CONFIG = ServeConfig(
    network="milan",
    scale=0.01,
    seed=3,
    regions=8,
    landmarks=4,
    methods=("NR",),
    workers=2,
    max_pending=8,
    routing="region",
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """In-process injection tests must never leak a plan to later tests."""
    fault_runtime.clear()
    yield
    fault_runtime.clear()


@pytest.fixture(scope="module")
def direct_system():
    """Read-only reference system; never apply updates to this instance."""
    return AirSystem.from_config(BASE_CONFIG.experiment_config())


@pytest.fixture(scope="module")
def server(direct_system):
    handle = ServerHandle.launch(BASE_CONFIG)
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def query_pairs(direct_system):
    rng = random.Random(17)
    nodes = direct_system.network.node_ids()
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(10)]


def _direct_distance(system, source, target):
    options = system.default_options.replace(tune_in_offset=0)
    return system.query("NR", source, target, options=options).distance


def _install(client, plan):
    return client.call(
        {"op": "chaos", "action": "install", "plan": plan.to_dict()}
    )


def _clear(client):
    return client.call({"op": "chaos", "action": "clear"})


# ----------------------------------------------------------------------
# The client never hangs on a misbehaving server
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _fake_server(behavior):
    """A one-connection TCP peer whose response behaviour we script.

    ``behavior(conn)`` runs in a thread after accept; the connection is
    held open until the context exits (so "stall forever" behaviours do
    not accidentally EOF early when the function returns).
    """
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    release = threading.Event()

    def serve():
        try:
            conn, _peer = listener.accept()
        except OSError:  # listener closed before any connection arrived
            return
        try:
            behavior(conn)
            release.wait(timeout=10.0)
        finally:
            conn.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    host, port = listener.getsockname()
    try:
        yield ("tcp", host, port)
    finally:
        release.set()
        listener.close()
        thread.join(timeout=10.0)


class TestClientNeverHangs:
    def test_half_written_frame_is_a_typed_error_within_timeout(self):
        """Regression: a server that stalls mid-frame must not hang reads.

        The peer sends the length prefix plus a few payload bytes and then
        goes silent.  A blocking read without the mid-frame guard would sit
        in ``recv`` forever; the contract is a typed ``ProtocolError`` no
        later than the socket timeout.
        """

        def half_frame(conn):
            read_frame(conn)
            frame = encode_frame({"status": "ok"})
            conn.sendall(frame[:7])  # 4-byte prefix + 3 payload bytes

        with _fake_server(half_frame) as address:
            client = ServingClient(address, timeout=0.5)
            try:
                started = time.monotonic()
                with pytest.raises(ProtocolError, match="mid-frame"):
                    client.ping()
                assert time.monotonic() - started < 5.0
            finally:
                client.close()

    def test_server_dying_mid_frame_is_a_typed_error_immediately(self):
        def dies_mid_frame(conn):
            read_frame(conn)
            frame = encode_frame({"status": "ok"})
            conn.sendall(frame[: len(frame) - 2])
            conn.shutdown(socket.SHUT_WR)

        with _fake_server(dies_mid_frame) as address:
            client = ServingClient(address, timeout=5.0)
            try:
                started = time.monotonic()
                with pytest.raises(ProtocolError, match="mid-frame"):
                    client.ping()
                # EOF, not timeout: the error is immediate.
                assert time.monotonic() - started < 2.0
            finally:
                client.close()

    def test_silent_server_honours_the_request_deadline(self):
        def silent(conn):
            read_frame(conn)  # swallow the request, never answer

        with _fake_server(silent) as address:
            client = ServingClient(address, timeout=120.0)
            try:
                started = time.monotonic()
                with pytest.raises(DeadlineExceeded):
                    client.call({"op": "ping"}, deadline_ms=250.0)
                # The 120 s connection timeout did not apply: the per-call
                # deadline capped the wait.
                assert time.monotonic() - started < 3.0
            finally:
                client.close()


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_s=0.0)

    def test_trips_after_threshold_and_rejects_with_retry_advice(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=10.0, clock=clock)
        for _ in range(2):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        clock.now = 4.0
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.before_call()
        assert excinfo.value.retry_after_s == pytest.approx(6.0)
        assert breaker.rejections == 1

    def test_success_resets_the_consecutive_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_after_s=10.0, clock=_FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=1.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.now = 1.5
        breaker.before_call()  # the probe is admitted
        assert breaker.state == CircuitBreaker.HALF_OPEN
        with pytest.raises(CircuitOpenError):
            breaker.before_call()  # concurrent caller rejected while probing
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.before_call()  # closed again: calls flow

    def test_failed_probe_reopens_and_restarts_the_cooldown(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=1.0, clock=clock)
        breaker.record_failure()
        clock.now = 1.5
        breaker.before_call()
        breaker.record_failure()  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.before_call()
        assert excinfo.value.retry_after_s == pytest.approx(1.0)

    def test_breaker_opens_against_a_dead_server_and_stops_touching_the_wire(self):
        """Integration: transport failures trip it, then calls fail instantly."""

        def slam(conn):
            conn.close()  # accept, then drop the connection on the floor

        with _fake_server(slam) as address:
            breaker = CircuitBreaker(failure_threshold=3, reset_after_s=60.0)
            client = ServingClient(address, timeout=2.0, breaker=breaker)
            try:
                for _ in range(3):
                    with pytest.raises(ProtocolError):
                        client.ping()
                assert breaker.state == CircuitBreaker.OPEN
                started = time.monotonic()
                with pytest.raises(CircuitOpenError):
                    client.ping()
                # Rejected from memory, not by a socket timeout.
                assert time.monotonic() - started < 0.5
                assert breaker.trips == 1
                assert breaker.rejections == 1
            finally:
                client.close()


# ----------------------------------------------------------------------
# End-to-end deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_worker_refuses_an_already_expired_request(self):
        runtime = WorkerRuntime(0)
        response = runtime.handle(
            {"op": "ping", "deadline_at": time.monotonic() - 1.0}
        )
        assert response["status"] == "error"
        assert response["error_kind"] == "deadline"
        # Without a deadline the same op answers fine (no segment needed).
        assert runtime.handle({"op": "ping"})["status"] == "ok"

    def test_live_daemon_deadline_exceeded_and_clean_recovery(
        self, server, direct_system, query_pairs
    ):
        """A hung worker burns the budget; the client gets a typed timeout.

        The late answer (the worker wakes after the server already gave up)
        must be discarded, not delivered to a later request.
        """
        source, target = query_pairs[0]
        plan = FaultPlan(
            [FaultSpec("worker.hang_ms", times=1, params={"hang_ms": 600})],
            seed=0,
        )
        try:
            with ServingClient(server.address) as client:
                before = client.info()["deadline_rejections"]
                assert _install(client, plan)["workers_applied"] == 2
                with pytest.raises(DeadlineExceeded):
                    client.call(
                        {
                            "op": "query",
                            "method": "NR",
                            "source": source,
                            "target": target,
                            "tune_in_offset": 0,
                        },
                        deadline_ms=150.0,
                    )
        finally:
            # A deadline abandons the exchange mid-flight: the server's own
            # (late) deadline error frame may still land on this socket, so
            # the connection is desynchronized -- reconnect, exactly as the
            # chaos driver does.  The clear waits for worker acks, draining
            # the hung worker before anything else is asserted.
            with ServingClient(server.address) as admin:
                _clear(admin)
        with ServingClient(server.address) as client:
            info = client.info()
            assert info["deadline_rejections"] >= before + 1
            served = client.query("NR", source, target, tune_in_offset=0)
            assert served["distance"] == _direct_distance(
                direct_system, source, target
            )
            assert "stale" not in served


# ----------------------------------------------------------------------
# Hang eviction
# ----------------------------------------------------------------------
class TestHangEviction:
    def test_hung_worker_is_evicted_respawned_and_service_restored(
        self, direct_system, query_pairs
    ):
        config = dataclasses.replace(
            BASE_CONFIG, workers=1, hang_timeout_s=0.5, heartbeat_interval_s=60.0
        )
        handle = ServerHandle.launch(config)
        try:
            source, target = query_pairs[0]
            plan = FaultPlan(
                [FaultSpec("worker.hang_ms", times=1, params={"hang_ms": 120_000})],
                seed=0,
            )
            with ServingClient(handle.address) as client:
                _install(client, plan)
                started = time.monotonic()
                with pytest.raises(ServerError, match="evicted"):
                    client.query("NR", source, target, tune_in_offset=0)
                # Detection is bounded by hang_timeout_s plus monitor slack,
                # not by the 2-minute hang.
                assert time.monotonic() - started < 5.0
                # The clear replays onto the respawned worker, so once it
                # returns the replacement is live and plan-free.
                _clear(client)
                info = client.info()
                assert info["hang_evictions"] == 1
                assert info["respawns"] >= 1
                assert all(row["alive"] for row in info["workers"])
                served = client.query("NR", source, target, tune_in_offset=0)
                assert served["distance"] == _direct_distance(
                    direct_system, source, target
                )
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Degraded refresh (stale-but-serving)
# ----------------------------------------------------------------------
class TestDegradedRefresh:
    def test_failed_refresh_keeps_serving_old_cycle_then_recovers(self, query_pairs):
        handle = ServerHandle.launch(BASE_CONFIG)
        reference = AirSystem.from_config(BASE_CONFIG.experiment_config())
        try:
            old_fingerprint = reference.network.fingerprint()
            edges = list(reference.network.edges())[:8]
            first_updates = [
                (e.source, e.target, e.weight * 1.7) for e in edges[:4]
            ]
            second_updates = [
                (e.source, e.target, e.weight * 1.9) for e in edges[4:]
            ]
            with ServingClient(handle.address) as client:
                _install(
                    client,
                    FaultPlan([FaultSpec("engine.refresh.fail", times=1)], seed=0),
                )
                outcome = client.refresh(first_updates)
                assert outcome["degraded"] is True
                assert outcome["stale"] is True
                assert outcome["workers_swapped"] == 0
                assert outcome["fingerprint"] == old_fingerprint
                assert "FaultInjected" in outcome["error"]

                # Degraded mode: the old cycle serves, flagged stale, still
                # bit-identical to the pre-update reference.
                for source, target in query_pairs[:5]:
                    served = client.query("NR", source, target, tune_in_offset=0)
                    assert served["stale"] is True
                    assert served["fingerprint"] == old_fingerprint
                    assert served["distance"] == _direct_distance(
                        reference, source, target
                    )
                info = client.info()
                assert info["stale"] is True
                assert info["refresh_failures"] == 1
                assert info["degraded_reason"]

                # Recovery: the next refresh rebuilds from the *cumulative*
                # updates (the failed batch was never dropped).
                _clear(client)
                outcome = client.refresh(second_updates)
                assert "degraded" not in outcome
                assert outcome["workers_swapped"] == 2
                assert outcome["num_changes"] == len(first_updates) + len(
                    second_updates
                )
                reference.apply_updates(first_updates)
                reference.apply_updates(second_updates)
                new_fingerprint = reference.network.fingerprint()
                assert outcome["fingerprint"] == new_fingerprint
                assert new_fingerprint != old_fingerprint

                for source, target in query_pairs[:5]:
                    served = client.query("NR", source, target, tune_in_offset=0)
                    assert "stale" not in served
                    assert served["fingerprint"] == new_fingerprint
                    assert served["distance"] == _direct_distance(
                        reference, source, target
                    )
                info = client.info()
                assert info["stale"] is False
                assert info["degraded_reason"] is None
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Segment integrity
# ----------------------------------------------------------------------
class TestSegmentIntegrity:
    def test_tampered_segment_fails_verification(self, direct_system):
        scheme = direct_system.scheme("NR")
        fault_runtime.install(
            FaultPlan([FaultSpec("shm.segment.tamper", times=1)], seed=0)
        )
        segment = SharedArtifactSegment.publish(
            direct_system.network, {"NR": scheme.artifact()}
        )
        fault_runtime.clear()
        try:
            with pytest.raises(SegmentIntegrityError):
                segment.verify()
        finally:
            segment.unlink()
            segment.close()

    def test_worker_keeps_old_segment_when_the_swap_target_is_corrupt(
        self, direct_system, query_pairs
    ):
        scheme = direct_system.scheme("NR")
        good = SharedArtifactSegment.publish(
            direct_system.network, {"NR": scheme.artifact()}
        )
        fault_runtime.install(
            FaultPlan([FaultSpec("shm.segment.tamper", times=1)], seed=0)
        )
        bad = SharedArtifactSegment.publish(
            direct_system.network, {"NR": scheme.artifact()}
        )
        fault_runtime.clear()
        runtime = WorkerRuntime(0, config=BASE_CONFIG.experiment_config())
        try:
            runtime.load_segment(good.name)
            old_fingerprint = runtime.segment.fingerprint

            response = runtime.handle({"op": "_swap", "segment": bad.name})
            assert response["status"] == "error"
            assert "SegmentIntegrityError" in response["error"]

            # The failed swap left the previous mapping serving.
            assert runtime.segment.fingerprint == old_fingerprint
            assert runtime.swaps == 0
            source, target = query_pairs[0]
            served = runtime.handle(
                {
                    "op": "query",
                    "method": "NR",
                    "source": source,
                    "target": target,
                    "tune_in_offset": 0,
                }
            )
            assert served["status"] == "ok"
            assert served["distance"] == _direct_distance(
                direct_system, source, target
            )
        finally:
            runtime.shutdown()
            for segment in (good, bad):
                segment.unlink()
                segment.close()


# ----------------------------------------------------------------------
# The chaos driver end to end
# ----------------------------------------------------------------------
class TestChaosDriver:
    def test_smoke_scenario_recovers_with_zero_identity_violations(
        self, direct_system, query_pairs
    ):
        handle = ServerHandle.launch(BASE_CONFIG)
        try:
            pairs = (query_pairs * 6)[:60]
            old_fingerprint = direct_system.network.fingerprint()
            table = {
                (source, target): _direct_distance(direct_system, source, target)
                for source, target in set(pairs)
            }

            def reference(fingerprint, source, target):
                if fingerprint != old_fingerprint:
                    return None  # refreshed cycle: no precomputed truth
                return table.get((source, target))

            edges = list(direct_system.network.edges())[:4]
            updates = [(e.source, e.target, e.weight * 1.7) for e in edges]

            report = run_chaos(
                handle.address,
                build_scenario("smoke", seed=7),
                pairs,
                method="NR",
                concurrency=4,
                deadline_ms=5000.0,
                refreshes=[updates],
                reference=reference,
            )

            assert report.requests == len(pairs)
            assert report.identity_violations == 0
            assert report.availability >= 0.8
            # The smoke plan kills workers mid-request; the monitor must
            # have respawned them, quickly.
            assert report.respawns >= 1
            assert report.mttr_s is not None and report.mttr_s < 5.0
            assert report.fault_stats.get("total_fired", 0) >= 1
            # The single refresh hit engine.refresh.fail: degraded, and the
            # staleness flag reached the clients.
            assert report.refreshes and report.refreshes[0]["degraded"]
            assert report.stale_responses > 0

            # The run cleans up after itself: plan cleared, workers alive.
            with ServingClient(handle.address) as client:
                info = client.info()
                assert info["faults"] is None
                assert all(row["alive"] for row in info["workers"])
        finally:
            handle.stop()
