"""Tests for the fleet subsystem: replay fidelity, simulator, scenarios."""

import math
import statistics

import pytest

from repro.broadcast.channel import ClientSession
from repro.broadcast.replay import RecordingSession, replay_trace
from repro.engine import AirSystem
from repro.experiments import (
    ExperimentConfig,
    fleet_hot_destination,
    fleet_rush_hour,
    fleet_uniform_trickle,
)
from repro.fleet import DeviceSpec, simulate_fleet
from repro.network.algorithms.dijkstra import shortest_path


@pytest.fixture(scope="module")
def probe_offsets(medium_network, dj_scheme):
    """A spread of tune-in offsets covering segment boundaries and interiors."""
    total = dj_scheme.cycle.total_packets
    return [0, 1, total // 3, total // 2, total - 1]


class TestReplayFidelity:
    def test_replay_matches_native_for_full_cycle_schemes(
        self, dj_scheme, af_scheme, ld_scheme, query_pairs, probe_offsets
    ):
        """Full-cycle receptions are one rotated segment sequence: replay is
        exact in both tuning time and access latency, at every offset."""
        for scheme in (dj_scheme, af_scheme, ld_scheme):
            cycle = scheme.cycle
            client = scheme.client()
            source, target = query_pairs[0]
            recording = RecordingSession(cycle, 7 % cycle.total_packets)
            probe = client.query(source, target, session=recording)
            trace = recording.trace()
            for offset in probe_offsets:
                native = client.query(
                    source, target, session=ClientSession(cycle, offset)
                )
                replayed = replay_trace(trace, cycle, offset)
                assert replayed.tuning_packets == native.metrics.tuning_time_packets
                assert (
                    replayed.access_latency_packets
                    == native.metrics.access_latency_packets
                )
                assert probe.distance == native.distance

    def test_replay_tuning_and_answers_exact_for_selective_schemes(
        self, nr_scheme, eb_scheme, query_pairs, probe_offsets
    ):
        """For selective-tuning schemes, replayed tuning time and answers are
        exact; latency may differ from a native session by bounded rotation
        error (see the replay module docstring)."""
        for scheme in (nr_scheme, eb_scheme):
            cycle = scheme.cycle
            client = scheme.client()
            for source, target in query_pairs[:4]:
                recording = RecordingSession(cycle, 0)
                probe = client.query(source, target, session=recording)
                trace = recording.trace()
                for offset in probe_offsets:
                    native = client.query(
                        source, target, session=ClientSession(cycle, offset)
                    )
                    replayed = replay_trace(trace, cycle, offset)
                    assert replayed.tuning_packets == native.metrics.tuning_time_packets
                    assert math.isclose(probe.distance, native.distance, rel_tol=1e-9)
                    assert replayed.access_latency_packets >= replayed.tuning_packets

    def test_replay_at_probe_offset_reproduces_probe(self, nr_scheme, query_pairs):
        cycle = nr_scheme.cycle
        client = nr_scheme.client()
        source, target = query_pairs[1]
        recording = RecordingSession(cycle, 5)
        probe = client.query(source, target, session=recording)
        replayed = replay_trace(recording.trace(), cycle, 5)
        assert replayed.tuning_packets == probe.metrics.tuning_time_packets
        assert replayed.access_latency_packets == probe.metrics.access_latency_packets

    def test_trace_tuning_packets_matches_session(self, dj_scheme, query_pairs):
        recording = RecordingSession(dj_scheme.cycle, 3)
        dj_scheme.client().query(*query_pairs[2], session=recording)
        assert recording.trace().tuning_packets == recording.tuning_packets

    def test_full_cycle_receive_records_and_replays(self, dj_scheme):
        """No shipped client calls receive_full_cycle, but the session API
        offers it; a recording must replay it exactly (loss 0: one whole
        cycle, no retries) rather than silently dropping it."""
        cycle = dj_scheme.cycle
        total = cycle.total_packets
        for offset in (0, 3, total - 1):
            recording = RecordingSession(cycle, offset)
            received = recording.receive_full_cycle()
            assert received == total
            trace = recording.trace()
            assert trace.tuning_packets == recording.tuning_packets == total
            for replay_offset in (0, total // 2):
                replayed = replay_trace(trace, cycle, replay_offset)
                assert replayed.tuning_packets == total
                assert replayed.access_latency_packets == total

    def test_lossy_traces_refuse_replay(self, nr_scheme, query_pairs):
        channel = nr_scheme.channel(loss_rate=0.2, seed=1)
        recording = RecordingSession(
            nr_scheme.cycle, 0, channel.session(0).loss_model
        )
        nr_scheme.client().query(*query_pairs[0], session=recording)
        # Even a lossy trace accounts its packets faithfully (retries included).
        assert recording.trace().tuning_packets == recording.tuning_packets
        with pytest.raises(ValueError, match="lossy"):
            replay_trace(recording.trace(), nr_scheme.cycle, 10)

    def test_stale_cycle_refused(self, nr_scheme, dj_scheme, query_pairs):
        recording = RecordingSession(nr_scheme.cycle, 0)
        nr_scheme.client().query(*query_pairs[0], session=recording)
        with pytest.raises(ValueError, match="cycle"):
            replay_trace(recording.trace(), dj_scheme.cycle, 0)


class TestSimulateFleet:
    def test_counters_partition_the_fleet(self, nr_scheme, medium_network):
        devices = fleet_rush_hour(medium_network, 60, seed=2, hot_pairs=6)
        lossy = fleet_uniform_trickle(medium_network, 15, seed=3, loss_rate=0.05)
        lossy = [
            DeviceSpec(
                device_id=60 + spec.device_id,
                source=spec.source,
                target=spec.target,
                tune_in_fraction=spec.tune_in_fraction,
                loss_rate=spec.loss_rate,
            )
            for spec in lossy
        ]
        run = simulate_fleet(nr_scheme, devices + lossy)
        assert run.num_devices == 75
        assert run.replays == 60
        assert run.natives == 15
        assert 1 <= run.probes <= 6
        modes = {o.spec.device_id: o.mode for o in run.outcomes}
        assert all(modes[i] == "replay" for i in range(60))
        assert all(modes[i] == "native" for i in range(60, 75))

    def test_mixed_fleet_bit_identical_across_concurrency(
        self, nr_scheme, medium_network
    ):
        devices = fleet_uniform_trickle(medium_network, 30, seed=9, loss_rate=0.0)
        devices += [
            DeviceSpec(device_id=100 + i, source=spec.source, target=spec.target,
                       loss_rate=0.08)
            for i, spec in enumerate(devices[:10])
        ]
        runs = [
            simulate_fleet(nr_scheme, devices, seed=4, concurrency=c)
            for c in (1, 2, 4)
        ]
        assert runs[0].signature() == runs[1].signature() == runs[2].signature()
        assert any(o.metrics.lost_packets > 0 for o in runs[0].outcomes)

    def test_explicit_offsets_and_fractions_are_honored(self, nr_scheme):
        total = nr_scheme.cycle.total_packets
        nodes = nr_scheme.network.node_ids()
        devices = [
            DeviceSpec(device_id=0, source=nodes[0], target=nodes[-1], tune_in_offset=5),
            DeviceSpec(
                device_id=1, source=nodes[0], target=nodes[-1], tune_in_fraction=0.5
            ),
        ]
        run = simulate_fleet(nr_scheme, devices)
        assert run.outcomes[0].tune_in_offset == 5
        assert run.outcomes[1].tune_in_offset == (total // 2) % total
        # Only one probe: both devices share the query.
        assert run.probes == 1

    def test_concurrency_below_one_rejected(self, nr_scheme):
        with pytest.raises(ValueError, match="concurrency"):
            simulate_fleet(nr_scheme, [], concurrency=0)

    def test_unknown_nodes_rejected(self, nr_scheme):
        bad = [DeviceSpec(device_id=0, source=-1, target=-2)]
        with pytest.raises(ValueError, match="outside network"):
            simulate_fleet(nr_scheme, bad)

    def test_empty_fleet_never_spins_up_a_pool(self, nr_scheme, monkeypatch):
        import repro.concurrency

        def forbidden(*args, **kwargs):
            raise AssertionError("thread pool created for an empty fleet")

        monkeypatch.setattr(repro.concurrency, "ThreadPoolExecutor", forbidden)
        run = simulate_fleet(nr_scheme, [], concurrency=8)
        assert run.num_devices == 0
        assert run.signature() == ()

    def test_memory_bound_devices(self, nr_scheme, medium_network):
        devices = fleet_rush_hour(medium_network, 20, seed=6, hot_pairs=4)
        bound = [
            DeviceSpec(
                device_id=spec.device_id,
                source=spec.source,
                target=spec.target,
                tune_in_fraction=spec.tune_in_fraction,
                memory_bound=True,
                true_distance=spec.true_distance,
            )
            for spec in devices
        ]
        plain_run = simulate_fleet(nr_scheme, devices)
        bound_run = simulate_fleet(nr_scheme, bound)
        assert bound_run.mismatches == 0
        assert bound_run.mean("peak_memory_bytes") < plain_run.mean("peak_memory_bytes")

    def test_memory_bound_rejected_for_full_cycle_schemes(self, dj_scheme):
        nodes = dj_scheme.network.node_ids()
        devices = [
            DeviceSpec(device_id=0, source=nodes[0], target=nodes[1], memory_bound=True)
        ]
        with pytest.raises(ValueError, match="memory-bound"):
            simulate_fleet(dj_scheme, devices)

    def test_device_spec_validation(self):
        with pytest.raises(ValueError, match="loss rate"):
            DeviceSpec(device_id=0, source=0, target=1, loss_rate=1.5)
        with pytest.raises(ValueError, match="tune_in_fraction"):
            DeviceSpec(device_id=0, source=0, target=1, tune_in_fraction=1.0)
        with pytest.raises(ValueError, match="tune_in_offset"):
            DeviceSpec(device_id=0, source=0, target=1, tune_in_offset=-3)


class TestScenarios:
    def test_scenarios_are_deterministic(self, medium_network):
        for generator in (fleet_rush_hour, fleet_uniform_trickle, fleet_hot_destination):
            first = generator(medium_network, 25, seed=11)
            second = generator(medium_network, 25, seed=11)
            other = generator(medium_network, 25, seed=12)
            assert first == second
            assert first != other
            assert [spec.device_id for spec in first] == list(range(25))

    def test_rush_hour_is_bursty_and_pooled(self, medium_network):
        devices = fleet_rush_hour(
            medium_network, 200, seed=1, hot_pairs=8, burst_center=0.4, burst_width=0.05
        )
        fractions = [spec.tune_in_fraction for spec in devices]
        assert statistics.pstdev(fractions) < 0.15
        pairs = {(spec.source, spec.target) for spec in devices}
        assert len(pairs) <= 8
        for spec in devices[:5]:
            truth = shortest_path(medium_network, spec.source, spec.target)
            assert spec.true_distance == pytest.approx(truth.distance)

    def test_hot_destination_concentrates_targets(self, medium_network):
        devices = fleet_hot_destination(
            medium_network, 120, seed=5, num_destinations=4, with_ground_truth=True
        )
        targets = {spec.target for spec in devices}
        assert len(targets) <= 4
        priced = [spec for spec in devices if spec.true_distance is not None]
        assert priced
        for spec in priced[:5]:
            truth = shortest_path(medium_network, spec.source, spec.target)
            assert spec.true_distance == pytest.approx(truth.distance)

    def test_degenerate_inputs_fail_fast(self, medium_network):
        from repro.network.graph import RoadNetwork

        lonely = RoadNetwork(name="lonely")
        lonely.add_node(0, 0.0, 0.0)
        for generator in (fleet_rush_hour, fleet_uniform_trickle, fleet_hot_destination):
            with pytest.raises(ValueError, match="at least 2 nodes"):
                generator(lonely, 3)
        with pytest.raises(ValueError, match="num_destinations"):
            fleet_hot_destination(medium_network, 5, num_destinations=0)

    def test_trickle_spreads_tune_ins(self, medium_network):
        devices = fleet_uniform_trickle(medium_network, 200, seed=8)
        fractions = sorted(spec.tune_in_fraction for spec in devices)
        assert fractions[0] < 0.1 and fractions[-1] > 0.9
        assert all(spec.true_distance is None for spec in devices)


class TestEngineFleetFacade:
    @pytest.fixture(scope="class")
    def system(self, medium_network):
        config = ExperimentConfig(
            network="germany", scale=0.01, seed=3,
            eb_nr_regions=8, arcflag_regions=8, hiti_regions=8, num_landmarks=2,
        )
        return AirSystem(medium_network, config=config)

    def test_simulate_fleet_reuses_the_cached_cycle(self, system, medium_network):
        system.clear_cache()
        devices = fleet_rush_hour(medium_network, 30, seed=4, hot_pairs=5)
        first = system.simulate_fleet("NR", devices)
        second = system.simulate_fleet("NR", devices)
        assert first.signature() == second.signature()
        info = system.cache_info()
        assert info.misses == 1
        assert info.hits >= 1

    def test_simulate_fleet_passes_scheme_params(self, system, medium_network):
        devices = fleet_rush_hour(medium_network, 10, seed=4, hot_pairs=3)
        run = system.simulate_fleet("NR", devices, num_regions=4)
        assert run.mismatches == 0
        assert system.scheme("NR", num_regions=4).num_regions == 4

    def test_simulate_fleet_concurrency_validated(self, system, medium_network):
        with pytest.raises(ValueError, match="concurrency"):
            system.simulate_fleet("NR", [], concurrency=0)
