"""Property tests for dynamic networks: random update sequences.

For random weight-update sequences on random small networks, and for every
registered scheme, the engine-refreshed state must be indistinguishable from
throwing everything away and rebuilding:

(a) post-refresh on-air answers equal Dijkstra on the *mutated* network,
(b) the refreshed broadcast cycle is bit-identical (segment for segment) to
    a from-scratch build over the mutated network, regardless of whether the
    scheme took the incremental path or the full-rebuild fallback, and
(c) for the schemes with real delta rebuilds, the refreshed pre-computation
    internals equal a scratch pre-computation (NR/EB border aggregates,
    HiTi super-edge hierarchies).

Like :mod:`test_properties_fleet`, these run on plain seeded-random
generators rather than hypothesis so the sampled sequences stay identical
across runs.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

import pytest

from repro import air
from repro.engine import AirSystem
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.algorithms.paths import INFINITY
from repro.network.graph import RoadNetwork

from test_properties_fleet import SMALL_PARAMS, random_network

SEEDS = [3, 17]
#: Schemes whose incremental_rebuild applies real weight deltas in place.
INCREMENTAL_SCHEMES = {"DJ", "NR", "EB", "HiTi"}


def random_update_batch(
    network: RoadNetwork, rng: random.Random, size: int = 3
) -> List[Tuple[int, int, float]]:
    """``size`` distinct-edge weight updates with positive random targets."""
    pairs = sorted({(edge.source, edge.target) for edge in network.edges()})
    batch = []
    for source, target in rng.sample(pairs, min(size, len(pairs))):
        weight = network.edge_weight(source, target)
        batch.append((source, target, weight * rng.uniform(0.3, 3.0)))
    return batch


def assert_answers_match_dijkstra(scheme, network: RoadNetwork, rng: random.Random):
    nodes = network.node_ids()
    client = scheme.client()
    checked = 0
    while checked < 4:
        source, target = rng.choice(nodes), rng.choice(nodes)
        if source == target:
            continue
        truth = shortest_path(network, source, target).distance
        if truth == INFINITY:
            continue
        checked += 1
        result = client.query(source, target)
        assert result.found
        assert math.isclose(result.distance, truth, rel_tol=1e-9, abs_tol=1e-9)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheme_name", sorted(SMALL_PARAMS))
def test_refresh_equals_scratch_rebuild_on_random_updates(scheme_name, seed):
    network = random_network(seed)
    network.clear_delta()
    params = SMALL_PARAMS[scheme_name]
    system = AirSystem(network)
    system.scheme(scheme_name, **params)
    rng = random.Random(seed + 71)

    for round_ in range(3):
        report = system.apply_updates(random_update_batch(network, rng))
        name = air.canonical_name(scheme_name)
        if name in INCREMENTAL_SCHEMES:
            assert report.incremental == (name,)
        else:
            assert report.rebuilt == (name,)

        refreshed = system.scheme(scheme_name, **params)
        scratch = air.create(scheme_name, network, **params)

        # (b) bit-identical cycle layout against a from-scratch build.
        assert refreshed.cycle.signature() == scratch.cycle.signature()

        # (c) internals for the real delta rebuilds.
        if name in ("NR", "EB"):
            assert refreshed.precomputation.min_distance == scratch.precomputation.min_distance
            assert refreshed.precomputation.max_distance == scratch.precomputation.max_distance
            assert (
                refreshed.precomputation.cross_border_nodes
                == scratch.precomputation.cross_border_nodes
            )
            assert (
                refreshed.precomputation.traversed_regions
                == scratch.precomputation.traversed_regions
            )
            assert (
                refreshed.precomputation.num_border_pairs
                == scratch.precomputation.num_border_pairs
            )
        if name == "HiTi":
            for level, scratch_level in zip(refreshed.index.levels, scratch.index.levels):
                for first, subgraph in scratch_level.items():
                    assert level[first].super_edges == subgraph.super_edges
                    assert level[first].border_nodes == subgraph.border_nodes

        # (a) answers equal Dijkstra on the mutated network.
        assert_answers_match_dijkstra(refreshed, network, rng)


@pytest.mark.parametrize("seed", SEEDS)
def test_structural_mutation_routes_through_full_rebuild(seed):
    network = random_network(seed)
    network.clear_delta()
    system = AirSystem(network)
    system.scheme("NR", **SMALL_PARAMS["NR"])
    nodes = network.node_ids()
    network.add_edge(nodes[0], nodes[-1], 7.5)
    report = system.refresh()
    assert report.structural
    assert report.rebuilt == ("NR",)
    assert report.incremental == ()
    rng = random.Random(seed)
    assert_answers_match_dijkstra(
        system.scheme("NR", **SMALL_PARAMS["NR"]), network, rng
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_interleaved_weight_and_structural_updates_stay_exact(seed):
    """A mixed mutate/refresh/query loop never serves a stale answer."""
    network = random_network(seed)
    network.clear_delta()
    system = AirSystem(network)
    rng = random.Random(seed + 5)
    for round_ in range(4):
        if round_ == 2:
            nodes = network.node_ids()
            network.add_edge(nodes[1], nodes[-2], rng.uniform(1.0, 20.0))
        else:
            network.apply_updates(random_update_batch(network, rng, size=2))
        system.refresh()
        assert_answers_match_dijkstra(
            system.scheme("NR", **SMALL_PARAMS["NR"]), network, rng
        )
    # The loop accumulated one superseded entry per distinct structure at
    # most; pruning keeps only the live one.
    system.prune_cache()
    assert all(key[2] == network.fingerprint() for key in system._schemes)


# ----------------------------------------------------------------------
# Repair-vs-scratch bit-identity for the NR/EB border-source repair
# ----------------------------------------------------------------------
def directed_update_batch(network, rng, kind, cached=None, size=3):
    """A ``size``-edge batch of the requested direction mix.

    ``outside`` picks only edges on no cached shortest path tree (not tight
    for any border source) and *increases* them, so a correct refresh must
    touch zero sources.
    """
    pairs = sorted({(edge.source, edge.target) for edge in network.edges()})
    if kind == "outside":
        csr = network.ensure_csr()
        index_of = csr.index_of
        chosen = []
        for source, target in pairs:
            u, v = index_of[source], index_of[target]
            weight = network.edge_weight(source, target)
            if all(
                record.dist[u] == INFINITY or record.dist[u] + weight > record.dist[v]
                for record in cached
            ):
                chosen.append((source, target, weight * rng.uniform(1.05, 2.0)))
                if len(chosen) == size:
                    break
        return chosen
    factors = {
        "decrease": (0.3, 0.95),
        "increase": (1.05, 3.0),
        "mixed": (0.3, 3.0),
    }[kind]
    batch = []
    for source, target in rng.sample(pairs, min(size, len(pairs))):
        weight = network.edge_weight(source, target)
        batch.append((source, target, weight * rng.uniform(*factors)))
    return batch


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", ["decrease", "increase", "mixed", "outside"])
@pytest.mark.parametrize("scheme_name", ["NR", "EB"])
def test_repair_labels_bit_identical_to_scratch(scheme_name, kind, seed):
    """The dynamic SSSP repair reproduces scratch labels *exactly*.

    Stronger than the aggregate checks above: every border source's full
    distance and predecessor arrays -- including equal-distance tie-breaks
    -- must match a from-scratch pre-computation bit for bit after each
    refresh round.
    """
    network = random_network(seed)
    network.clear_delta()
    params = SMALL_PARAMS[scheme_name]
    system = AirSystem(network)
    system.scheme(scheme_name, **params)
    rng = random.Random(seed * 101 + len(kind))

    for round_ in range(3):
        precomputation = system.scheme(scheme_name, **params).precomputation
        batch = directed_update_batch(
            network, rng, kind, cached=precomputation._sources
        )
        if not batch:
            pytest.skip("no qualifying edges on this network")
        network.apply_updates(batch)
        if kind == "outside":
            # No cached tree uses these edges and they only got longer:
            # the affected-source test must prove no source can move.
            assert precomputation.affected_sources(
                network.pending_delta().changes
            ) == []
        report = system.refresh()
        assert report.incremental == (air.canonical_name(scheme_name),)

        refreshed = system.scheme(scheme_name, **params)
        scratch = air.create(scheme_name, network, **params)
        assert refreshed.cycle.signature() == scratch.cycle.signature()
        for record, scratch_record in zip(
            refreshed.precomputation._sources, scratch.precomputation._sources
        ):
            assert record.node == scratch_record.node
            assert record.dist == scratch_record.dist
            assert record.pred == scratch_record.pred
            assert record.cross_nodes == scratch_record.cross_nodes
            assert record.min_to == scratch_record.min_to
            assert record.max_to == scratch_record.max_to
            assert record.traversed == scratch_record.traversed


@pytest.mark.parametrize("seed", SEEDS)
def test_raise_then_lower_same_edge_in_one_batch(seed):
    """Per-edge coalescing must keep the true pre-batch old weight.

    A batch that raises and then lowers the same edge coalesces to one
    change with first-old/last-new semantics; misreporting the old weight
    would let ``affected_sources`` skip sources whose trees used the edge
    at its pre-batch weight.
    """
    network = random_network(seed)
    network.clear_delta()
    params = SMALL_PARAMS["NR"]
    system = AirSystem(network)
    system.scheme("NR", **params)
    rng = random.Random(seed + 13)
    pairs = sorted({(edge.source, edge.target) for edge in network.edges()})
    source, target = rng.choice(pairs)
    original = network.edge_weight(source, target)

    # Raise then lower below the original, in one batch: net decrease.
    network.apply_updates([(source, target, original * 4.0), (source, target, original * 0.5)])
    delta = network.pending_delta()
    assert len(delta.changes) == 1
    (change,) = delta.changes
    assert change.old_weight == original
    assert change.new_weight == original * 0.5
    report = system.refresh()
    assert report.incremental == ("NR",)
    refreshed = system.scheme("NR", **params)
    scratch = air.create("NR", network, **params)
    assert refreshed.cycle.signature() == scratch.cycle.signature()
    assert refreshed.precomputation.min_distance == scratch.precomputation.min_distance
    assert refreshed.precomputation.max_distance == scratch.precomputation.max_distance
    assert_answers_match_dijkstra(refreshed, network, rng)

    # Raise then restore: the coalesced delta must vanish entirely and the
    # fingerprint return to its pre-batch value (nothing to refresh).
    fingerprint = network.fingerprint()
    current = network.edge_weight(source, target)
    network.apply_updates([(source, target, current * 3.0), (source, target, current)])
    assert len(network.pending_delta().changes) == 0
    assert network.fingerprint() == fingerprint
    report = system.refresh()
    assert report.incremental == () and report.rebuilt == ()
    assert_answers_match_dijkstra(system.scheme("NR", **params), network, rng)


@pytest.mark.parametrize("seed", SEEDS)
def test_refresh_async_swap_equals_blocking_refresh(seed):
    """``refresh_async`` lands exactly the state a blocking refresh would."""
    network = random_network(seed)
    network.clear_delta()
    system = AirSystem(network)
    for name in ("NR", "EB"):
        system.scheme(name, **SMALL_PARAMS[name])
    rng = random.Random(seed + 29)

    for _ in range(2):
        network.apply_updates(random_update_batch(network, rng))
        handle = system.refresh_async()
        report = handle.wait(60.0)
        assert handle.done
        assert set(report.incremental) == {"NR", "EB"}
        assert report.rebuilt == ()
        for name in ("NR", "EB"):
            refreshed = system.scheme(name, **SMALL_PARAMS[name])
            scratch = air.create(name, network, **SMALL_PARAMS[name])
            assert refreshed.cycle.signature() == scratch.cycle.signature()
        assert_answers_match_dijkstra(
            system.scheme("NR", **SMALL_PARAMS["NR"]), network, rng
        )

    # A no-op refresh_async returns an already-completed handle.
    handle = system.refresh_async()
    assert handle.done
    assert handle.wait(0.0).num_changes == 0
