"""Property tests for dynamic networks: random update sequences.

For random weight-update sequences on random small networks, and for every
registered scheme, the engine-refreshed state must be indistinguishable from
throwing everything away and rebuilding:

(a) post-refresh on-air answers equal Dijkstra on the *mutated* network,
(b) the refreshed broadcast cycle is bit-identical (segment for segment) to
    a from-scratch build over the mutated network, regardless of whether the
    scheme took the incremental path or the full-rebuild fallback, and
(c) for the schemes with real delta rebuilds, the refreshed pre-computation
    internals equal a scratch pre-computation (NR/EB border aggregates,
    HiTi super-edge hierarchies).

Like :mod:`test_properties_fleet`, these run on plain seeded-random
generators rather than hypothesis so the sampled sequences stay identical
across runs.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

import pytest

from repro import air
from repro.engine import AirSystem
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.algorithms.paths import INFINITY
from repro.network.graph import RoadNetwork

from test_properties_fleet import SMALL_PARAMS, random_network

SEEDS = [3, 17]
#: Schemes whose incremental_rebuild applies real weight deltas in place.
INCREMENTAL_SCHEMES = {"DJ", "NR", "EB", "HiTi"}


def random_update_batch(
    network: RoadNetwork, rng: random.Random, size: int = 3
) -> List[Tuple[int, int, float]]:
    """``size`` distinct-edge weight updates with positive random targets."""
    pairs = sorted({(edge.source, edge.target) for edge in network.edges()})
    batch = []
    for source, target in rng.sample(pairs, min(size, len(pairs))):
        weight = network.edge_weight(source, target)
        batch.append((source, target, weight * rng.uniform(0.3, 3.0)))
    return batch


def assert_answers_match_dijkstra(scheme, network: RoadNetwork, rng: random.Random):
    nodes = network.node_ids()
    client = scheme.client()
    checked = 0
    while checked < 4:
        source, target = rng.choice(nodes), rng.choice(nodes)
        if source == target:
            continue
        truth = shortest_path(network, source, target).distance
        if truth == INFINITY:
            continue
        checked += 1
        result = client.query(source, target)
        assert result.found
        assert math.isclose(result.distance, truth, rel_tol=1e-9, abs_tol=1e-9)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheme_name", sorted(SMALL_PARAMS))
def test_refresh_equals_scratch_rebuild_on_random_updates(scheme_name, seed):
    network = random_network(seed)
    network.clear_delta()
    params = SMALL_PARAMS[scheme_name]
    system = AirSystem(network)
    system.scheme(scheme_name, **params)
    rng = random.Random(seed + 71)

    for round_ in range(3):
        report = system.apply_updates(random_update_batch(network, rng))
        name = air.canonical_name(scheme_name)
        if name in INCREMENTAL_SCHEMES:
            assert report.incremental == (name,)
        else:
            assert report.rebuilt == (name,)

        refreshed = system.scheme(scheme_name, **params)
        scratch = air.create(scheme_name, network, **params)

        # (b) bit-identical cycle layout against a from-scratch build.
        assert refreshed.cycle.signature() == scratch.cycle.signature()

        # (c) internals for the real delta rebuilds.
        if name in ("NR", "EB"):
            assert refreshed.precomputation.min_distance == scratch.precomputation.min_distance
            assert refreshed.precomputation.max_distance == scratch.precomputation.max_distance
            assert (
                refreshed.precomputation.cross_border_nodes
                == scratch.precomputation.cross_border_nodes
            )
            assert (
                refreshed.precomputation.traversed_regions
                == scratch.precomputation.traversed_regions
            )
            assert (
                refreshed.precomputation.num_border_pairs
                == scratch.precomputation.num_border_pairs
            )
        if name == "HiTi":
            for level, scratch_level in zip(refreshed.index.levels, scratch.index.levels):
                for first, subgraph in scratch_level.items():
                    assert level[first].super_edges == subgraph.super_edges
                    assert level[first].border_nodes == subgraph.border_nodes

        # (a) answers equal Dijkstra on the mutated network.
        assert_answers_match_dijkstra(refreshed, network, rng)


@pytest.mark.parametrize("seed", SEEDS)
def test_structural_mutation_routes_through_full_rebuild(seed):
    network = random_network(seed)
    network.clear_delta()
    system = AirSystem(network)
    system.scheme("NR", **SMALL_PARAMS["NR"])
    nodes = network.node_ids()
    network.add_edge(nodes[0], nodes[-1], 7.5)
    report = system.refresh()
    assert report.structural
    assert report.rebuilt == ("NR",)
    assert report.incremental == ()
    rng = random.Random(seed)
    assert_answers_match_dijkstra(
        system.scheme("NR", **SMALL_PARAMS["NR"]), network, rng
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_interleaved_weight_and_structural_updates_stay_exact(seed):
    """A mixed mutate/refresh/query loop never serves a stale answer."""
    network = random_network(seed)
    network.clear_delta()
    system = AirSystem(network)
    rng = random.Random(seed + 5)
    for round_ in range(4):
        if round_ == 2:
            nodes = network.node_ids()
            network.add_edge(nodes[1], nodes[-2], rng.uniform(1.0, 20.0))
        else:
            network.apply_updates(random_update_batch(network, rng, size=2))
        system.refresh()
        assert_answers_match_dijkstra(
            system.scheme("NR", **SMALL_PARAMS["NR"]), network, rng
        )
    # The loop accumulated one superseded entry per distinct structure at
    # most; pruning keeps only the live one.
    system.prune_cache()
    assert all(key[2] == network.fingerprint() for key in system._schemes)
