"""Property suite: the bulk replay kernel is bit-identical to scalar replay.

:func:`repro.broadcast.replay_bulk.replay_trace_bulk` promises to produce,
for every device position, exactly the tuning time and access latency the
scalar reference :func:`repro.broadcast.replay.replay_trace` would.  These
properties check that promise where it matters:

* real traces from all seven registered schemes over random networks,
  replayed at every position of the broadcast cycle (small cycles) or a
  dense random sample (larger ones), including the position-anchored head
  positions right at and around each op's recorded anchor;
* synthetic corner traces -- no segment ops at all (a pure head), a single
  segment op, and segment anchors shared between ops (the rotation
  tie-break);
* whole-fleet equivalence: :func:`repro.fleet.simulate_fleet` with the bulk
  kernel on vs. forced off yields identical signatures, aggregates, and
  materialized outcomes;
* error parity: the bulk kernel rejects lossy traces and stale cycles with
  the same messages as the scalar path.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro import air
from repro.broadcast import replay_bulk
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.device import CHANNEL_2MBPS, J2ME_CLAMSHELL
from repro.broadcast.packet import Segment, SegmentKind
from repro.broadcast.replay import (
    OpKind,
    RecordingSession,
    SessionTrace,
    TraceOp,
    replay_trace,
)
from repro.broadcast.replay_bulk import (
    CycleLayout,
    TraceTable,
    replay_trace_bulk,
)
from repro.experiments import fleet_uniform_trickle
from repro.fleet import simulate_fleet

from test_properties_fleet import SMALL_PARAMS, random_network

np = pytest.importorskip("numpy")

SEEDS = [5, 23]


def sample_positions(total: int, rng: random.Random, dense_limit: int = 600):
    """Every cycle position when feasible, else a dense random sample."""
    if total <= dense_limit:
        return list(range(total))
    picks = {0, 1, total - 1}
    picks.update(rng.randrange(total) for _ in range(120))
    return sorted(picks)


def assert_bulk_matches_scalar(trace, cycle, positions):
    layout = cycle.compiled_layout()
    table = TraceTable.compile(trace, layout)
    bulk = replay_trace_bulk(table, layout, np.asarray(positions, dtype=np.int64))
    for slot, position in enumerate(positions):
        scalar = replay_trace(trace, cycle, position)
        assert bulk.tuning_packets == scalar.tuning_packets, (
            f"tuning diverged at position {position}"
        )
        assert int(bulk.access_latency_packets[slot]) == scalar.access_latency_packets, (
            f"latency diverged at position {position}: "
            f"bulk={int(bulk.access_latency_packets[slot])} scalar={scalar.access_latency_packets}"
        )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheme_name", sorted(SMALL_PARAMS))
def test_bulk_replay_matches_scalar_on_real_traces(scheme_name, seed):
    """All seven schemes, every tune-in position of each recorded trace."""
    rng = random.Random(seed * 7 + 1)
    network = random_network(seed)
    scheme = air.create(scheme_name, network, **SMALL_PARAMS[scheme_name])
    cycle = scheme.cycle
    client = scheme.client()
    node_ids = sorted(network.node_ids())
    for _ in range(3):
        source, target = rng.choice(node_ids), rng.choice(node_ids)
        session = RecordingSession(cycle, rng.randrange(cycle.total_packets))
        client.query(source, target, session=session)
        trace = session.trace()
        positions = sample_positions(cycle.total_packets, rng)
        # Anchor-adjacent positions exercise the rotation boundary exactly.
        for op in trace.ops:
            positions.extend(
                p % cycle.total_packets for p in (op.anchor - 1, op.anchor, op.anchor + 1)
            )
        assert_bulk_matches_scalar(trace, cycle, sorted(set(positions)))


def synthetic_cycle():
    return BroadcastCycle(
        [
            Segment(name="index", kind=SegmentKind.INDEX, size_bytes=600),
            Segment(name="data-a", kind=SegmentKind.NETWORK_DATA, size_bytes=1000),
            Segment(name="data-b", kind=SegmentKind.NETWORK_DATA, size_bytes=400),
        ],
        name="synthetic",
    )


def test_bulk_replay_on_trace_without_segment_ops():
    """A pure position-anchored head: no body, no rotation at all."""
    cycle = synthetic_cycle()
    total = cycle.total_packets
    trace = SessionTrace(
        ops=(
            TraceOp(OpKind.ONE_PACKET, anchor=3),
            TraceOp(OpKind.ONE_PACKET, anchor=4),
            TraceOp(OpKind.FULL_CYCLE, packet_count=total),
        ),
        cycle_packets=total,
    )
    assert_bulk_matches_scalar(trace, cycle, list(range(total)))


def test_bulk_replay_on_head_plus_rotating_body():
    """Head reads followed by a rotated multi-segment body, shared anchors.

    Two body ops share ``data-a``'s anchor, so the rotation tie-break (the
    earliest recorded op wins) is observable at the positions where that
    anchor is the next one on the air.
    """
    cycle = synthetic_cycle()
    total = cycle.total_packets
    start_a = cycle.segment_start("data-a")
    start_b = cycle.segment_start("data-b")
    packets_a = cycle.segment("data-a").num_packets
    trace = SessionTrace(
        ops=(
            TraceOp(OpKind.ONE_PACKET, anchor=0),
            TraceOp(
                OpKind.SEGMENT,
                name="data-a",
                packet_count=2,
                last_offset=1,
                anchor=start_a,
            ),
            TraceOp(OpKind.ONE_PACKET, anchor=(start_a + 2) % total),
            TraceOp(
                OpKind.SEGMENT,
                name="data-a",
                packet_count=1,
                last_offset=packets_a - 1,
                anchor=start_a,
            ),
            TraceOp(
                OpKind.SEGMENT,
                name="data-b",
                packet_count=1,
                last_offset=0,
                anchor=start_b,
            ),
        ),
        cycle_packets=total,
    )
    assert_bulk_matches_scalar(trace, cycle, list(range(total)))


def test_bulk_replay_on_single_segment_trace():
    cycle = synthetic_cycle()
    total = cycle.total_packets
    trace = SessionTrace(
        ops=(
            TraceOp(
                OpKind.SEGMENT,
                name="index",
                packet_count=1,
                last_offset=0,
                anchor=cycle.segment_start("index"),
            ),
        ),
        cycle_packets=total,
    )
    assert_bulk_matches_scalar(trace, cycle, list(range(total)))


def test_bulk_replay_accepts_positions_beyond_one_cycle():
    """Global (multi-cycle) start positions behave like the scalar path."""
    cycle = synthetic_cycle()
    total = cycle.total_packets
    trace = SessionTrace(
        ops=(
            TraceOp(OpKind.ONE_PACKET, anchor=0),
            TraceOp(
                OpKind.SEGMENT,
                name="data-b",
                packet_count=1,
                last_offset=0,
                anchor=cycle.segment_start("data-b"),
            ),
        ),
        cycle_packets=total,
    )
    positions = [0, 1, total - 1, total, total + 5, 7 * total + 3]
    assert_bulk_matches_scalar(trace, cycle, positions)


def test_bulk_replay_rejects_lossy_traces_like_scalar():
    cycle = synthetic_cycle()
    trace = SessionTrace(
        ops=(TraceOp(OpKind.ONE_PACKET, anchor=0),),
        cycle_packets=cycle.total_packets,
        loss_rate=0.25,
    )
    layout = cycle.compiled_layout()
    table = TraceTable.compile(trace, layout)
    with pytest.raises(ValueError, match="lossy"):
        replay_trace(trace, cycle, 0)
    with pytest.raises(ValueError, match="lossy"):
        replay_trace_bulk(table, layout, np.zeros(1, dtype=np.int64))


def test_trace_table_rejects_stale_cycles_like_scalar():
    cycle = synthetic_cycle()
    other = BroadcastCycle(
        [Segment(name="index", kind=SegmentKind.INDEX, size_bytes=120)],
        name="other",
    )
    trace = SessionTrace(
        ops=(TraceOp(OpKind.ONE_PACKET, anchor=0),),
        cycle_packets=cycle.total_packets,
    )
    with pytest.raises(ValueError, match="cycle"):
        replay_trace(trace, other, 0)
    with pytest.raises(ValueError, match="packet"):
        TraceTable.compile(trace, other.compiled_layout())


def test_cycle_layout_vectorizes_next_segment_named():
    """``CycleLayout.next_starts`` equals ``cycle.next_segment_named``."""
    cycle = synthetic_cycle()
    layout = cycle.compiled_layout()
    total = cycle.total_packets
    positions = np.arange(0, 3 * total, dtype=np.int64)
    for name in ("index", "data-a", "data-b"):
        starts = layout.next_starts(layout.index_of[name], positions.copy())
        for position, start in zip(positions.tolist(), starts.tolist()):
            assert start == cycle.next_segment_named(name, position)


@pytest.mark.parametrize("scheme_name", sorted(SMALL_PARAMS))
def test_fleet_run_identical_with_bulk_kernel_on_and_off(scheme_name, monkeypatch):
    """Whole-fleet equivalence: signatures, aggregates and outcomes match."""
    seed = SEEDS[0]
    network = random_network(seed)
    scheme = air.create(scheme_name, network, **SMALL_PARAMS[scheme_name])
    # A couple of lossy devices keep the native path in the mix too.
    devices = fleet_uniform_trickle(network, 14, seed=seed + 2, with_ground_truth=True)
    lossy = fleet_uniform_trickle(network, 2, seed=seed + 3, loss_rate=0.05)
    base_id = len(devices)
    for index, spec in enumerate(lossy):
        devices.append(dataclasses.replace(spec, device_id=base_id + index))

    bulk_run = simulate_fleet(scheme, devices, seed=seed)
    monkeypatch.setattr(replay_bulk, "USE_BULK_REPLAY", False)
    scalar_run = simulate_fleet(scheme, devices, seed=seed)

    assert bulk_run.signature() == scalar_run.signature()
    assert bulk_run.probes == scalar_run.probes
    assert bulk_run.replays == scalar_run.replays
    assert bulk_run.natives == scalar_run.natives
    assert bulk_run.mismatches == scalar_run.mismatches
    for quantile in (0, 25, 50, 90, 99, 100):
        assert bulk_run.percentile("access_latency_packets", quantile) == (
            scalar_run.percentile("access_latency_packets", quantile)
        )
        assert bulk_run.percentile("tuning_time_packets", quantile) == (
            scalar_run.percentile("tuning_time_packets", quantile)
        )
    assert bulk_run.mean("peak_memory_bytes") == scalar_run.mean("peak_memory_bytes")
    assert bulk_run.mean("access_latency_packets") == (
        scalar_run.mean("access_latency_packets")
    )
    # cpu_seconds (and hence energy) is wall-clock measured at the probe, so
    # it is not comparable across runs; the vectorized aggregates are checked
    # against the per-outcome scalar computation within each run instead.
    for run in (bulk_run, scalar_run):
        assert run.mean_energy_joules() == pytest.approx(
            sum(
                o.metrics.energy_joules(J2ME_CLAMSHELL, CHANNEL_2MBPS)
                for o in run.outcomes
            )
            / run.num_devices
        )
        assert run.mean("cpu_seconds") == pytest.approx(
            sum(o.metrics.cpu_seconds for o in run.outcomes) / run.num_devices
        )
    for ours, theirs in zip(bulk_run.outcomes, scalar_run.outcomes):
        assert ours.deterministic_fields() == theirs.deterministic_fields()
        assert ours.mode == theirs.mode
        assert ours.metrics.extra == theirs.metrics.extra


def test_cycle_layout_exposes_segment_anchors():
    cycle = synthetic_cycle()
    layout = cycle.compiled_layout()
    for name in ("index", "data-a", "data-b"):
        anchors = layout.segment_anchors(name)
        assert anchors.tolist() == [cycle.segment_start(name)]


class TestColumnarFleetRun:
    """Edge cases of the columnar FleetRun storage and aggregates."""

    def run_with_devices(self):
        seed = SEEDS[0]
        network = random_network(seed)
        scheme = air.create("DJ", network)
        devices = fleet_uniform_trickle(network, 8, seed=seed, with_ground_truth=True)
        return simulate_fleet(scheme, devices, seed=seed)

    def test_empty_run_aggregates(self):
        from repro.fleet.results import FleetRun

        run = FleetRun(scheme="DJ")
        assert run.outcomes == []
        assert run.signature() == ()
        assert run.mismatches == 0
        assert run.num_devices == 0
        assert run.percentile("access_latency_packets", 50) == 0.0
        assert run.mean("tuning_time_packets") == 0.0
        assert run.mean_energy_joules() == 0.0
        assert run.devices_per_second == float("inf")

    def test_unknown_metric_raises(self):
        run = self.run_with_devices()
        with pytest.raises(AttributeError, match="unknown ClientMetrics field"):
            run.percentile("no_such_metric", 50)
        with pytest.raises(AttributeError, match="unknown ClientMetrics field"):
            run.mean("no_such_metric")

    def test_percentile_range_validated(self):
        run = self.run_with_devices()
        with pytest.raises(ValueError, match="percentile"):
            run.percentile("access_latency_packets", 101)
        with pytest.raises(ValueError, match="percentile"):
            run.percentile("access_latency_packets", -1)

    def test_vectorized_percentile_selects_nearest_rank_element(self):
        from repro.stats import percentile as scalar_percentile

        run = self.run_with_devices()
        values = [float(o.metrics.access_latency_packets) for o in run.outcomes]
        for q in (0, 1, 10, 33, 50, 66.6, 90, 99, 100):
            assert run.percentile("access_latency_packets", q) == (
                scalar_percentile(values, q)
            )

    def test_unrecorded_slot_materializes_empty_extra(self):
        from repro.fleet.results import FleetRun

        run = self.run_with_devices()
        spec = run.outcomes[0].spec
        bare = FleetRun(scheme="DJ")
        bare.allocate([spec])
        assert bare.outcomes[0].metrics.extra == {}

    def test_vectorized_energy_and_percentile_views(self):
        run = self.run_with_devices()
        manual = sum(
            o.metrics.energy_joules(J2ME_CLAMSHELL, CHANNEL_2MBPS)
            for o in run.outcomes
        ) / run.num_devices
        assert run.mean_energy_joules() == pytest.approx(manual)
        assert run.latency_percentiles() == {
            q: run.percentile("access_latency_packets", q) for q in (50, 90, 99)
        }
        assert run.tuning_percentiles() == {
            q: run.percentile("tuning_time_packets", q) for q in (50, 90, 99)
        }
        assert 0 < run.devices_per_second < float("inf")
        assert f"devices={run.num_devices}" in repr(run)

    def test_allocated_but_empty_columns_aggregate_to_zero(self):
        from repro.fleet.results import FleetRun

        run = FleetRun(scheme="DJ")
        run.allocate([])
        assert run.percentile("access_latency_packets", 90) == 0.0
        assert run.mean("access_latency_packets") == 0.0
        assert run.mean_energy_joules() == 0.0
        assert run.outcomes == []

    def test_outcomes_are_cached_and_in_device_order(self):
        run = self.run_with_devices()
        first = run.outcomes
        assert run.outcomes is first
        assert [o.spec.device_id for o in first] == sorted(
            o.spec.device_id for o in first
        )


def test_mixed_ground_truths_in_one_replay_group_flag_per_device():
    """Devices sharing a query but not a ground truth get per-device flags."""
    seed = SEEDS[0]
    network = random_network(seed)
    scheme = air.create("DJ", network)
    base = fleet_uniform_trickle(network, 1, seed=seed, with_ground_truth=True)[0]
    devices = [
        dataclasses.replace(base, device_id=0, tune_in_fraction=0.1),
        # Same query, deliberately wrong truth: must flag as a mismatch.
        dataclasses.replace(
            base,
            device_id=1,
            tune_in_fraction=0.6,
            true_distance=base.true_distance + 1_000.0,
        ),
        # Same query, no truth recorded: never a mismatch.
        dataclasses.replace(
            base, device_id=2, tune_in_fraction=0.9, true_distance=None
        ),
    ]
    run = simulate_fleet(scheme, devices, seed=seed)
    assert run.probes == 1 and run.replays == 3
    assert [o.mismatch for o in run.outcomes] == [False, True, False]
    assert run.mismatches == 1


def test_explicit_offsets_reach_bulk_kernel_unchanged():
    """Spec-pinned offsets land in the outcome exactly (mod cycle length)."""
    seed = SEEDS[1]
    network = random_network(seed)
    scheme = air.create("NR", network, **SMALL_PARAMS["NR"])
    total = scheme.cycle.total_packets
    base = fleet_uniform_trickle(network, 2, seed=seed, with_ground_truth=True)
    pinned = [
        dataclasses.replace(base[0], tune_in_offset=11, tune_in_fraction=None),
        dataclasses.replace(base[1], tune_in_offset=total + 4, tune_in_fraction=None),
    ]
    run = simulate_fleet(scheme, pinned, seed=seed)
    assert run.outcomes[0].tune_in_offset == 11 % total
    assert run.outcomes[1].tune_in_offset == (total + 4) % total
