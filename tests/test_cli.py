"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    buffer = io.StringIO()
    code = main(argv, out=buffer)
    return code, buffer.getvalue()


COMMON = ["--network", "milan", "--scale", "0.01", "--seed", "3", "--regions", "8"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cycle", "--network", "atlantis"])

    def test_defaults(self):
        args = build_parser().parse_args(["cycle"])
        assert args.network == "germany"
        assert args.method == "NR"


class TestSchemesCommand:
    def test_lists_every_registered_scheme(self):
        from repro import air

        code, output = run_cli(["schemes"])
        assert code == 0
        for name in air.available_schemes():
            assert name in output

    def test_shows_parameters_and_defaults(self):
        code, output = run_cli(["schemes"])
        assert code == 0
        assert "num_regions=32" in output  # NR default, from the registry
        assert "num_landmarks=4" in output  # LD default


class TestSchemeNameResolution:
    def test_method_names_are_case_insensitive(self):
        args = build_parser().parse_args(["cycle", "--method", "hiti"])
        assert args.method == "HiTi"

    def test_unknown_method_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cycle", "--method", "XYZ"])

    def test_methods_list_is_parsed_and_canonicalized(self):
        args = build_parser().parse_args(["compare", "--methods", "nr, dj"])
        assert args.methods == ["NR", "DJ"]


class TestCycleCommand:
    def test_prints_cycle_statistics(self):
        code, output = run_cli(["cycle", "--method", "NR"] + COMMON)
        assert code == 0
        assert "cycle packets" in output
        assert "pre-computation seconds" in output

    def test_dijkstra_cycle_has_no_index_packets(self):
        code, output = run_cli(["cycle", "--method", "DJ"] + COMMON)
        assert code == 0
        index_row = next(line for line in output.splitlines() if "index packets" in line)
        assert index_row.split()[-1] == "0"


class TestQueryCommand:
    def test_runs_requested_number_of_queries(self):
        code, output = run_cli(["query", "--method", "NR", "--queries", "4"] + COMMON)
        assert code == 0
        data_lines = [line for line in output.splitlines() if "->" in line]
        assert len(data_lines) == 4

    def test_memory_bound_flag_accepted(self):
        code, output = run_cli(
            ["query", "--method", "EB", "--queries", "2", "--memory-bound"] + COMMON
        )
        assert code == 0
        assert "EB on-air queries" in output

    def test_lossy_channel(self):
        code, output = run_cli(
            ["query", "--method", "NR", "--queries", "2", "--loss-rate", "0.05"] + COMMON
        )
        assert code == 0
        assert "loss=0.05" in output


class TestCompareCommand:
    def test_compares_methods_with_zero_mismatches(self):
        code, output = run_cli(
            ["compare", "--methods", "NR,DJ", "--queries", "4"] + COMMON
        )
        assert code == 0
        lines = [line for line in output.splitlines() if line.startswith(("NR", "DJ"))]
        assert len(lines) == 2
        # Last column is the mismatch count; it must be zero for both.
        assert all(line.split()[-1] == "0" for line in lines)


class TestDynamicCommand:
    def test_congestion_stream_runs_with_zero_mismatches(self):
        code, output = run_cli(
            ["dynamic", "--steps", "3", "--devices", "6"] + COMMON
        )
        assert code == 0
        assert "Dynamic stream 'congestion' x3 steps on NR" in output
        assert "incremental" in output
        summary = [
            line for line in output.splitlines()
            if line.startswith("mismatches vs mutated-network Dijkstra")
        ]
        assert summary and summary[0].split()[-1] == "0"

    def test_closures_stream_and_method_selection(self):
        code, output = run_cli(
            [
                "dynamic", "--stream", "closures", "--method", "dj",
                "--steps", "2", "--devices", "5", "--scenario", "hot-destination",
            ]
            + COMMON
        )
        assert code == 0
        assert "'closures' x2 steps on DJ" in output

    def test_unknown_stream_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dynamic", "--stream", "earthquakes"])
