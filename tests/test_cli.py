"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    buffer = io.StringIO()
    code = main(argv, out=buffer)
    return code, buffer.getvalue()


COMMON = ["--network", "milan", "--scale", "0.01", "--seed", "3", "--regions", "8"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cycle", "--network", "atlantis"])

    def test_defaults(self):
        args = build_parser().parse_args(["cycle"])
        assert args.network == "germany"
        assert args.method == "NR"


class TestSchemesCommand:
    def test_lists_every_registered_scheme(self):
        from repro import air

        code, output = run_cli(["schemes"])
        assert code == 0
        for name in air.available_schemes():
            assert name in output

    def test_shows_parameters_and_defaults(self):
        code, output = run_cli(["schemes"])
        assert code == 0
        assert "num_regions=32" in output  # NR default, from the registry
        assert "num_landmarks=4" in output  # LD default


class TestSchemeNameResolution:
    def test_method_names_are_case_insensitive(self):
        args = build_parser().parse_args(["cycle", "--method", "hiti"])
        assert args.method == "HiTi"

    def test_unknown_method_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cycle", "--method", "XYZ"])

    def test_methods_list_is_parsed_and_canonicalized(self):
        args = build_parser().parse_args(["compare", "--methods", "nr, dj"])
        assert args.methods == ["NR", "DJ"]


class TestCycleCommand:
    def test_prints_cycle_statistics(self):
        code, output = run_cli(["cycle", "--method", "NR"] + COMMON)
        assert code == 0
        assert "cycle packets" in output
        assert "pre-computation seconds" in output

    def test_dijkstra_cycle_has_no_index_packets(self):
        code, output = run_cli(["cycle", "--method", "DJ"] + COMMON)
        assert code == 0
        index_row = next(line for line in output.splitlines() if "index packets" in line)
        assert index_row.split()[-1] == "0"


class TestQueryCommand:
    def test_runs_requested_number_of_queries(self):
        code, output = run_cli(["query", "--method", "NR", "--queries", "4"] + COMMON)
        assert code == 0
        data_lines = [line for line in output.splitlines() if "->" in line]
        assert len(data_lines) == 4

    def test_memory_bound_flag_accepted(self):
        code, output = run_cli(
            ["query", "--method", "EB", "--queries", "2", "--memory-bound"] + COMMON
        )
        assert code == 0
        assert "EB on-air queries" in output

    def test_lossy_channel(self):
        code, output = run_cli(
            ["query", "--method", "NR", "--queries", "2", "--loss-rate", "0.05"] + COMMON
        )
        assert code == 0
        assert "loss=0.05" in output


class TestCompareCommand:
    def test_compares_methods_with_zero_mismatches(self):
        code, output = run_cli(
            ["compare", "--methods", "NR,DJ", "--queries", "4"] + COMMON
        )
        assert code == 0
        lines = [line for line in output.splitlines() if line.startswith(("NR", "DJ"))]
        assert len(lines) == 2
        # Last column is the mismatch count; it must be zero for both.
        assert all(line.split()[-1] == "0" for line in lines)


class TestDynamicCommand:
    def test_congestion_stream_runs_with_zero_mismatches(self):
        code, output = run_cli(
            ["dynamic", "--steps", "3", "--devices", "6"] + COMMON
        )
        assert code == 0
        assert "Dynamic stream 'congestion' x3 steps on NR" in output
        assert "incremental" in output
        summary = [
            line for line in output.splitlines()
            if line.startswith("mismatches vs mutated-network Dijkstra")
        ]
        assert summary and summary[0].split()[-1] == "0"

    def test_closures_stream_and_method_selection(self):
        code, output = run_cli(
            [
                "dynamic", "--stream", "closures", "--method", "dj",
                "--steps", "2", "--devices", "5", "--scenario", "hot-destination",
            ]
            + COMMON
        )
        assert code == 0
        assert "'closures' x2 steps on DJ" in output

    def test_unknown_stream_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dynamic", "--stream", "earthquakes"])


class TestStoreCommand:
    def test_build_then_rebuild_restores_from_store(self, tmp_path):
        argv = ["store", "--dir", str(tmp_path), "build", "--methods", "NR,DJ"] + COMMON
        code, output = run_cli(argv)
        assert code == 0
        assert "built" in output
        code, output = run_cli(argv)
        assert code == 0
        # Second pass restores every scheme from disk instead of rebuilding.
        assert output.count("restored") == 2 and "built" not in output

    def test_ls_lists_stored_artifacts(self, tmp_path):
        run_cli(["store", "--dir", str(tmp_path), "build", "--methods", "NR"] + COMMON)
        code, output = run_cli(["store", "--dir", str(tmp_path), "ls"])
        assert code == 0
        assert "NR" in output and "num_regions=8" in output
        assert "1 entries" in output

    def test_verify_flags_corruption_with_exit_code(self, tmp_path):
        run_cli(["store", "--dir", str(tmp_path), "build", "--methods", "DJ"] + COMMON)
        code, output = run_cli(["store", "--dir", str(tmp_path), "verify"])
        assert code == 0
        from repro.store import ArtifactStore

        (entry,) = ArtifactStore(tmp_path).entries()
        entry.path.write_bytes(entry.path.read_bytes()[:-4])
        code, output = run_cli(["store", "--dir", str(tmp_path), "verify"])
        assert code == 1
        assert "quarantined" in output

    def test_gc_enforces_byte_cap(self, tmp_path):
        run_cli(["store", "--dir", str(tmp_path), "build", "--methods", "NR,DJ"] + COMMON)
        code, output = run_cli(
            ["store", "--dir", str(tmp_path), "gc", "--max-bytes", "0"]
        )
        assert code == 0
        rows = dict(
            line.split(None, 1)
            for line in output.splitlines()
            if line.startswith(("evicted", "remaining_"))
        )
        assert rows["evicted"].strip() == "2"
        assert rows["remaining_entries"].strip() == "0"
        code, output = run_cli(["store", "--dir", str(tmp_path), "ls"])
        assert "0 entries" in output

    def test_store_requires_dir_and_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "ls"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "--dir", "/tmp/x"])

    def test_stats_reports_counters(self, tmp_path):
        run_cli(["store", "--dir", str(tmp_path), "build", "--methods", "NR"] + COMMON)
        code, output = run_cli(["store", "--dir", str(tmp_path), "stats"])
        assert code == 0
        rows = dict(
            line.split(None, 1)
            for line in output.splitlines()
            if line.startswith(("entries", "bytes", "hits", "writes"))
        )
        assert rows["entries"].strip() == "1"
        assert int(rows["bytes"].strip()) > 0

    def test_prune_drops_by_fingerprint_prefix(self, tmp_path):
        run_cli(["store", "--dir", str(tmp_path), "build", "--methods", "NR,DJ"] + COMMON)
        from repro.store import ArtifactStore

        (fingerprint,) = {
            entry.network_fingerprint for entry in ArtifactStore(tmp_path).entries()
        }
        code, output = run_cli(
            ["store", "--dir", str(tmp_path), "prune", "--fingerprints", fingerprint[:10]]
        )
        assert code == 0
        assert "2 objects removed" in output
        code, output = run_cli(["store", "--dir", str(tmp_path), "ls"])
        assert "0 entries" in output

    def test_prune_without_matches_removes_nothing(self, tmp_path):
        run_cli(["store", "--dir", str(tmp_path), "build", "--methods", "NR"] + COMMON)
        code, output = run_cli(
            ["store", "--dir", str(tmp_path), "prune", "--fingerprints", "zzzz"]
        )
        assert code == 0
        assert "0 objects removed" in output
        _, output = run_cli(["store", "--dir", str(tmp_path), "ls"])
        assert "1 entries" in output


class TestServeAndBenchClient:
    def test_serve_then_bench_client_burst_and_shutdown(self, tmp_path):
        import threading
        import time

        socket_path = str(tmp_path / "daemon.sock")
        serve_argv = (
            ["serve", "--methods", "NR", "--workers", "2", "--socket", socket_path]
            + COMMON
        )
        outcome = {}

        def run_daemon():
            outcome["code"], outcome["output"] = run_cli(serve_argv)

        daemon = threading.Thread(target=run_daemon, daemon=True)
        daemon.start()
        deadline = time.time() + 120.0
        import os

        while time.time() < deadline and not os.path.exists(socket_path):
            time.sleep(0.1)
        assert os.path.exists(socket_path), "daemon never opened its socket"

        code, output = run_cli(
            [
                "bench-client",
                "--method",
                "NR",
                "--socket",
                socket_path,
                "--requests",
                "12",
                "--concurrency",
                "2",
                "--shutdown",
            ]
            + COMMON
        )
        assert code == 0
        assert "throughput (qps)" in output
        assert "12 / 0" in output  # every request answered, none errored
        daemon.join(timeout=60.0)
        assert not daemon.is_alive(), "daemon did not stop after the shutdown request"
        assert outcome["code"] == 0
        assert f"serving on unix:{socket_path}" in outcome["output"]

    def test_bench_client_requires_an_address(self):
        with pytest.raises(SystemExit):
            run_cli(["bench-client", "--requests", "1"] + COMMON)


class TestStoreRepair:
    def test_verify_repair_rebuilds_corrupted_artifacts(self, tmp_path):
        build = ["store", "--dir", str(tmp_path), "build", "--methods", "NR,DJ"] + COMMON
        assert run_cli(build)[0] == 0
        from repro.store import ArtifactStore

        entry = ArtifactStore(tmp_path).entries()[0]
        entry.path.write_bytes(entry.path.read_bytes()[:-4])  # torn object

        code, output = run_cli(
            ["store", "--dir", str(tmp_path), "verify", "--repair",
             "--methods", "NR,DJ"] + COMMON
        )
        assert code == 0
        assert "rebuilt" in output and "intact" in output
        assert "post-repair quarantined" in output
        # The store is whole again: a plain verify passes with exit 0.
        code, output = run_cli(["store", "--dir", str(tmp_path), "verify"])
        assert code == 0
        code, output = run_cli(["store", "--dir", str(tmp_path), "ls"])
        assert "2 entries" in output

    def test_verify_repair_on_a_clean_store_is_a_noop(self, tmp_path):
        run_cli(["store", "--dir", str(tmp_path), "build", "--methods", "NR"] + COMMON)
        code, output = run_cli(
            ["store", "--dir", str(tmp_path), "verify", "--repair",
             "--methods", "NR"] + COMMON
        )
        assert code == 0
        assert "intact" in output and "rebuilt" not in output


class TestChaosCommand:
    def test_parser_defaults_and_scenario_choices(self):
        args = build_parser().parse_args(["chaos", "--socket", "/tmp/x.sock"])
        assert args.scenario == "smoke"
        assert args.requests == 200
        assert args.concurrency == 4
        assert args.deadline_ms == 2000.0
        assert args.refreshes == 1
        assert args.min_availability is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--scenario", "earthquake"])

    def test_chaos_requires_an_address(self):
        with pytest.raises(SystemExit):
            run_cli(["chaos", "--requests", "1"] + COMMON)

    def test_chaos_run_against_a_live_daemon(self, tmp_path):
        import os
        import threading
        import time

        socket_path = str(tmp_path / "chaos.sock")
        serve_argv = (
            ["serve", "--methods", "NR", "--workers", "2", "--socket", socket_path]
            + COMMON
        )
        outcome = {}

        def run_daemon():
            outcome["code"], outcome["output"] = run_cli(serve_argv)

        daemon = threading.Thread(target=run_daemon, daemon=True)
        daemon.start()
        deadline = time.time() + 120.0
        while time.time() < deadline and not os.path.exists(socket_path):
            time.sleep(0.1)
        assert os.path.exists(socket_path), "daemon never opened its socket"

        code, output = run_cli(
            [
                "chaos",
                "--socket", socket_path,
                "--scenario", "smoke",
                "--requests", "40",
                "--concurrency", "4",
                "--deadline-ms", "5000",
                "--refreshes", "1",
                "--min-availability", "0.5",
            ]
            + COMMON
        )
        assert code == 0, output
        assert "Chaos run: 40 x NR under 'smoke'" in output
        assert "identity violations" in output
        assert "FAIL" not in output
        # The smoke plan fired at least one fault and it shows in the table.
        fired_row = next(
            line for line in output.splitlines() if "faults fired" in line
        )
        assert fired_row.split(None, 2)[-1].strip() != "-"

        # The run cleared its plan: the daemon serves a clean burst after.
        code, output = run_cli(
            [
                "bench-client",
                "--method", "NR",
                "--socket", socket_path,
                "--requests", "8",
                "--concurrency", "2",
                "--shutdown",
            ]
            + COMMON
        )
        assert code == 0
        assert "8 / 0" in output
        daemon.join(timeout=60.0)
        assert not daemon.is_alive()
        assert outcome["code"] == 0


class TestConsoleScriptEntryPoint:
    def test_pyproject_declares_the_repro_script(self):
        import pathlib

        # tomllib is stdlib only from 3.11; the project supports 3.10.
        tomllib = pytest.importorskip("tomllib")
        pyproject = pathlib.Path(__file__).parent.parent / "pyproject.toml"
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        assert data["project"]["scripts"]["repro"] == "repro.cli:main"

    def test_entry_point_target_is_the_cli_main(self):
        # The console script resolves to the same callable `python -m repro`
        # uses, so both front doors behave identically.
        import repro.cli

        assert repro.cli.main is main
