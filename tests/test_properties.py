"""Property-based tests (hypothesis) for the core data structures."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.air.packing import RowMajorCellPacking, SquareCellPacking
from repro.broadcast.packet import PACKET_PAYLOAD_BYTES, Segment, SegmentKind, packets_for_bytes
from repro.broadcast.cycle import BroadcastCycle
from repro.network.algorithms.bidirectional import bidirectional_dijkstra
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.graph import RoadNetwork
from repro.partitioning.kdtree import KDTreePartitioner
from repro.spatial.hilbert import hilbert_index, hilbert_point


# ----------------------------------------------------------------------
# Random graph strategy
# ----------------------------------------------------------------------
@st.composite
def road_networks(draw, max_nodes=24):
    """Small random connected-ish directed networks with positive weights."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    network = RoadNetwork(name="hypothesis")
    for node_id in range(num_nodes):
        x = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
        y = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
        network.add_node(node_id, x, y)
    # A random spanning chain keeps most node pairs reachable.
    for node_id in range(1, num_nodes):
        weight = draw(st.floats(min_value=0.1, max_value=50, allow_nan=False))
        network.add_bidirectional_edge(node_id - 1, node_id, weight)
    extra_edges = draw(st.integers(min_value=0, max_value=2 * num_nodes))
    for _ in range(extra_edges):
        a = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        b = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        if a == b:
            continue
        weight = draw(st.floats(min_value=0.1, max_value=50, allow_nan=False))
        network.add_edge(a, b, weight)
    return network


class TestShortestPathProperties:
    @given(road_networks(), st.data())
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_dijkstra_agrees_with_bidirectional(self, network, data):
        source = data.draw(st.integers(min_value=0, max_value=network.num_nodes - 1))
        target = data.draw(st.integers(min_value=0, max_value=network.num_nodes - 1))
        forward = shortest_path(network, source, target)
        both_ways = bidirectional_dijkstra(network, source, target)
        assert math.isclose(forward.distance, both_ways.distance, rel_tol=1e-9, abs_tol=1e-9)

    @given(road_networks(), st.data())
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_triangle_inequality_over_intermediate_nodes(self, network, data):
        source = data.draw(st.integers(min_value=0, max_value=network.num_nodes - 1))
        target = data.draw(st.integers(min_value=0, max_value=network.num_nodes - 1))
        middle = data.draw(st.integers(min_value=0, max_value=network.num_nodes - 1))
        direct = shortest_path(network, source, target).distance
        via = (
            shortest_path(network, source, middle).distance
            + shortest_path(network, middle, target).distance
        )
        assert direct <= via + 1e-9 or via == float("inf")

    @given(road_networks(), st.data())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_path_cost_equals_reported_distance(self, network, data):
        from repro.network.algorithms.paths import path_cost, validate_path

        source = data.draw(st.integers(min_value=0, max_value=network.num_nodes - 1))
        target = data.draw(st.integers(min_value=0, max_value=network.num_nodes - 1))
        result = shortest_path(network, source, target)
        if result.found:
            assert validate_path(network, result.path)
            assert math.isclose(path_cost(network, result.path), result.distance, rel_tol=1e-9, abs_tol=1e-9)


class TestKdTreeProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1000, max_value=1000, allow_nan=False),
                st.floats(min_value=-1000, max_value=1000, allow_nan=False),
            ),
            min_size=1,
            max_size=120,
        ),
        st.sampled_from([2, 4, 8, 16]),
    )
    @settings(max_examples=80, deadline=None)
    def test_split_values_round_trip(self, points, regions):
        original = KDTreePartitioner.build(points, regions)
        rebuilt = KDTreePartitioner.from_splitting_values(original.splitting_values(), regions)
        for x, y in points:
            assert original.locate(x, y) == rebuilt.locate(x, y)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=80,
        ),
        st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_point_maps_to_a_valid_region(self, points, regions):
        partitioner = KDTreePartitioner.build(points, regions)
        for x, y in points:
            assert 0 <= partitioner.locate(x, y) < regions


class TestBroadcastProperties:
    @given(st.lists(st.integers(min_value=0, max_value=5_000), min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_cycle_length_is_sum_of_segment_packets(self, sizes):
        segments = [
            Segment(f"s{i}", SegmentKind.NETWORK_DATA, size) for i, size in enumerate(sizes)
        ]
        cycle = BroadcastCycle(segments)
        assert cycle.total_packets == sum(packets_for_bytes(size) for size in sizes)

    @given(st.lists(st.integers(min_value=0, max_value=5_000), min_size=1, max_size=20), st.integers(min_value=0, max_value=200))
    @settings(max_examples=80, deadline=None)
    def test_segment_at_is_consistent_with_ranges(self, sizes, probe):
        segments = [
            Segment(f"s{i}", SegmentKind.NETWORK_DATA, size) for i, size in enumerate(sizes)
        ]
        cycle = BroadcastCycle(segments)
        offset = probe % cycle.total_packets
        segment = cycle.segment_at(offset)
        start, length = cycle.segment_range(segment.name)
        assert start <= offset < start + length

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_packets_for_bytes_bounds(self, size):
        packets = packets_for_bytes(size)
        assert packets >= 1
        assert (packets - 1) * PACKET_PAYLOAD_BYTES < max(size, 1) <= packets * PACKET_PAYLOAD_BYTES


class TestPackingProperties:
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_every_cell_has_exactly_one_packet(self, regions, cells_per_packet, data):
        packing_cls = data.draw(st.sampled_from([SquareCellPacking, RowMajorCellPacking]))
        packing = packing_cls(regions, cells_per_packet)
        row = data.draw(st.integers(min_value=0, max_value=regions - 1))
        col = data.draw(st.integers(min_value=0, max_value=regions - 1))
        packet = packing.packet_of(row, col)
        assert 0 <= packet < packing.num_packets


class TestHilbertProperties:
    @given(st.integers(min_value=1, max_value=7), st.data())
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, order, data):
        side = 1 << order
        x = data.draw(st.integers(min_value=0, max_value=side - 1))
        y = data.draw(st.integers(min_value=0, max_value=side - 1))
        assert hilbert_point(order, hilbert_index(order, x, y)) == (x, y)
