"""Tests for the experiment harness (workloads, runner, applicability, report)."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    QueryWorkload,
    build_scheme,
    compare_methods,
    method_applicability,
    report,
    run_workload,
    scaled_device,
)
from repro.experiments.finetune import finetune_sweep


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        network="germany",
        scale=0.01,
        seed=3,
        num_queries=6,
        eb_nr_regions=8,
        arcflag_regions=8,
        hiti_regions=8,
        num_landmarks=2,
    )


@pytest.fixture(scope="module")
def workload(medium_network):
    return QueryWorkload(medium_network, num_queries=8, seed=2)


class TestWorkload:
    def test_requested_number_of_queries(self, workload):
        assert len(workload) == 8

    def test_queries_are_connected_and_distinct(self, workload):
        for query in workload:
            assert query.source != query.target
            assert query.true_distance < float("inf")

    def test_deterministic_per_seed(self, medium_network):
        a = QueryWorkload(medium_network, 5, seed=9).pairs()
        b = QueryWorkload(medium_network, 5, seed=9).pairs()
        assert a == b

    def test_bucketing_covers_all_queries(self, workload):
        buckets = workload.bucket_by_length(4)
        assert sum(len(queries) for queries in buckets.values()) == len(workload)
        assert len(buckets) == 4

    def test_bucket_edges_increase(self, workload):
        labels = list(workload.bucket_by_length(4))
        lows = [float(label.split("-")[0]) for label in labels]
        assert lows == sorted(lows)

    def test_diameter_estimate_positive(self, workload):
        assert workload.network_diameter_estimate(samples=2) > 0


class TestRunner:
    def test_build_scheme_for_every_method(self, medium_network, config):
        for method in ["DJ", "NR", "EB", "LD", "AF"]:
            scheme = build_scheme(method, medium_network, config)
            assert scheme.short_name == method

    def test_unknown_method_rejected(self, medium_network, config):
        with pytest.raises(ValueError):
            build_scheme("XYZ", medium_network, config)

    def test_run_workload_has_no_mismatches(self, nr_scheme, workload, config):
        run = run_workload(nr_scheme, list(workload)[:5], config)
        assert run.mismatches == 0
        assert len(run.per_query) == 5
        assert run.mean.tuning_time_packets > 0

    def test_compare_methods_produces_one_run_per_method(self, medium_network, workload, config):
        runs = compare_methods(["DJ", "NR"], medium_network, workload, config)
        assert set(runs) == {"DJ", "NR"}
        for run in runs.values():
            assert run.mismatches == 0

    def test_nr_beats_dijkstra_on_tuning(self, medium_network, workload, config):
        """The paper's headline result at any scale."""
        runs = compare_methods(["DJ", "NR"], medium_network, workload, config)
        assert runs["NR"].mean.tuning_time_packets < runs["DJ"].mean.tuning_time_packets
        assert runs["NR"].mean.peak_memory_bytes < runs["DJ"].mean.peak_memory_bytes


class TestApplicability:
    def test_scaled_device_shrinks_heap(self, config):
        device = scaled_device(config.device, 0.5)
        assert device.heap_bytes == config.device.heap_bytes // 2

    def test_applicability_results_cover_grid(self, config):
        results = method_applicability(
            ["DJ", "NR"], ["milan"], config, probe_queries=2
        )
        assert len(results) == 2
        for result in results:
            assert result.peak_memory_bytes > 0
            assert isinstance(result.applicable, bool)


class TestFinetune:
    def test_sweep_produces_requested_points(self, medium_network, workload, config):
        points = finetune_sweep(
            medium_network,
            list(workload)[:4],
            config,
            settings=[8, 16],
            methods=("NR", "DJ"),
        )
        assert [point.regions for point in points] == [8, 16]
        for point in points:
            assert set(point.runs) == {"NR", "DJ"}

    def test_unsweepable_method_rejected(self, medium_network, workload, config):
        with pytest.raises(ValueError, match="no fine-tuning sweep"):
            finetune_sweep(
                medium_network, list(workload)[:2], config, settings=[8], methods=("SPQ",)
            )

    def test_arcflag_skipped_beyond_cap(self, medium_network, workload, config):
        points = finetune_sweep(
            medium_network,
            list(workload)[:2],
            config,
            settings=[8, 16],
            methods=("AF",),
            max_arcflag_regions=8,
        )
        assert "AF" in points[0].runs
        assert "AF" not in points[1].runs


class TestReport:
    def test_format_table_alignment(self):
        text = report.format_table(
            ["Method", "Packets"], [["NR", 123], ["EB", 4567]], title="Table"
        )
        lines = text.splitlines()
        assert lines[0] == "Table"
        assert "NR" in lines[2] or "NR" in lines[3]
        assert len(lines) == 5

    def test_format_series(self):
        line = report.format_series("NR", {"0-3.5": 1.5, "3.5-7": 2.0})
        assert line.startswith("NR:")
        assert "0-3.5" in line

    def test_unit_conversions(self):
        assert report.bytes_to_mb(1024 * 1024) == 1.0
        assert report.packets_to_thousands(2500) == 2.5
