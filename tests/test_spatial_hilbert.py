"""Unit tests for the Hilbert curve mapping."""

import pytest

from repro.spatial.hilbert import (
    hilbert_index,
    hilbert_order_for,
    hilbert_point,
    point_to_hilbert,
)


class TestHilbertMapping:
    def test_order_one_visits_all_four_cells(self):
        distances = {hilbert_index(1, x, y) for x in range(2) for y in range(2)}
        assert distances == {0, 1, 2, 3}

    def test_round_trip_for_every_cell(self):
        order = 4
        side = 1 << order
        for x in range(side):
            for y in range(side):
                assert hilbert_point(order, hilbert_index(order, x, y)) == (x, y)

    def test_bijection_covers_all_distances(self):
        order = 3
        side = 1 << order
        values = {hilbert_index(order, x, y) for x in range(side) for y in range(side)}
        assert values == set(range(side * side))

    def test_adjacent_curve_positions_are_adjacent_cells(self):
        """The locality property the air indexes rely on."""
        order = 5
        side = 1 << order
        for distance in range(side * side - 1):
            x1, y1 = hilbert_point(order, distance)
            x2, y2 = hilbert_point(order, distance + 1)
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_out_of_range_cell_rejected(self):
        with pytest.raises(ValueError):
            hilbert_index(2, 4, 0)
        with pytest.raises(ValueError):
            hilbert_point(2, 16)


class TestHelpers:
    def test_order_for_grows_with_object_count(self):
        assert hilbert_order_for(10) < hilbert_order_for(100_000)

    def test_order_is_capped(self):
        assert hilbert_order_for(10**12) <= 16

    def test_point_to_hilbert_respects_bounds(self):
        bounds = (0.0, 0.0, 100.0, 100.0)
        value_low = point_to_hilbert(0.0, 0.0, bounds, 4)
        value_clamped = point_to_hilbert(-50.0, -50.0, bounds, 4)
        assert value_low == value_clamped

    def test_nearby_points_nearby_values_often(self):
        bounds = (0.0, 0.0, 100.0, 100.0)
        a = point_to_hilbert(10.0, 10.0, bounds, 6)
        b = point_to_hilbert(10.5, 10.5, bounds, 6)
        assert abs(a - b) < (1 << 6) ** 2 / 4
