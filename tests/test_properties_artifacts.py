"""Property suite for the build/serve split: artifact round trips.

The hard contract of PR 5: for every registered scheme, a scheme restored
with ``Scheme.from_artifact(network, artifact)`` -- including through a full
byte serialization and a disk-store round trip -- must be *bit-identical* in
behaviour to the scratch build it came from:

* equal broadcast cycles (``BroadcastCycle.signature()``),
* equal answers, paths, and packet/memory metrics for arbitrary queries
  (CPU seconds excepted: those are wall clock),
* equal refresh behaviour under subsequent weight updates, and
* byte-stable golden-trace replays.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import air
from repro.air.base import AirIndexScheme
from repro.broadcast.replay import RecordingSession
from repro.engine import AirSystem, ArtifactStore
from repro.network.generators import GeneratorConfig, generate_road_network
from repro.serialize import (
    ArtifactMismatchError,
    BuildArtifact,
    decode_network,
    encode_network,
)

#: Per-scheme parameters sized for the small property networks.
SCHEME_PARAMS = {
    "DJ": {},
    "NR": {"num_regions": 8},
    "EB": {"num_regions": 8},
    "LD": {"num_landmarks": 2},
    "AF": {"num_regions": 8},
    "SPQ": {"max_depth": 8},
    "HiTi": {"num_regions": 8},
}

NETWORK_SEEDS = (97, 12)


def make_network(seed: int):
    network = generate_road_network(
        GeneratorConfig(num_nodes=110, num_edges=260, seed=seed),
        name=f"artifact-net-{seed}",
    )
    network.clear_delta()
    return network


def round_trip(scheme, network):
    """scheme -> artifact -> bytes -> artifact -> scheme, on ``network``."""
    artifact = BuildArtifact.from_bytes(scheme.artifact().to_bytes())
    return AirIndexScheme.from_artifact(network, artifact)


def metrics_key(result):
    """Everything deterministic about a query result (CPU time excluded)."""
    return (
        result.distance,
        tuple(result.path),
        tuple(result.received_regions),
        result.metrics.tuning_time_packets,
        result.metrics.access_latency_packets,
        result.metrics.peak_memory_bytes,
        result.metrics.lost_packets,
        tuple(sorted(result.metrics.extra.items())),
    )


def assert_serves_identically(scratch, restored, seed: int, queries: int = 6):
    """Same answers, paths, and packet metrics for sampled queries."""
    assert restored.cycle.signature() == scratch.cycle.signature()
    rng = random.Random(seed)
    nodes = scratch.network.node_ids()
    offsets = range(0, scratch.cycle.total_packets, max(1, scratch.cycle.total_packets // queries))
    for offset in list(offsets)[:queries]:
        source, target = rng.choice(nodes), rng.choice(nodes)
        left = scratch.client().query(source, target, tune_in_offset=offset)
        right = restored.client().query(source, target, tune_in_offset=offset)
        assert metrics_key(left) == metrics_key(right), (
            f"{scratch.short_name}: query {source}->{target}@{offset} diverged"
        )


@pytest.mark.parametrize("seed", NETWORK_SEEDS)
@pytest.mark.parametrize("name", sorted(SCHEME_PARAMS))
def test_round_trip_serves_bit_identically(name, seed):
    network = make_network(seed)
    scratch = air.create(name, network, **SCHEME_PARAMS[name])
    scratch.cycle
    # Restore onto an *independently reconstructed* network: the full
    # build/serve split, network codec included.
    serving_network = decode_network(encode_network(network))
    restored = round_trip(scratch, serving_network)
    assert type(restored) is type(scratch)
    assert restored.precomputation_seconds == scratch.precomputation_seconds
    assert_serves_identically(scratch, restored, seed=seed)
    # Server-side accounting matches too (cycle composition is the paper's
    # Table 1 row).
    left, right = scratch.server_metrics(), restored.server_metrics()
    assert (left.cycle_packets, left.cycle_bytes, left.data_packets, left.index_packets) == (
        right.cycle_packets,
        right.cycle_bytes,
        right.data_packets,
        right.index_packets,
    )


@pytest.mark.parametrize("name", ["DJ", "NR", "EB", "HiTi"])
def test_restored_scheme_refreshes_bit_identically(name):
    """Weight updates after a restore take the same incremental path."""
    build_network = make_network(31)
    serving_network = decode_network(encode_network(build_network))
    scratch = air.create(name, build_network, **SCHEME_PARAMS[name])
    scratch.cycle
    restored = round_trip(scratch, serving_network)

    rng = random.Random(77)
    edges = [(e.source, e.target) for e in build_network.edges()]
    for _ in range(3):
        updates = [
            (s, t, round(rng.uniform(0.5, 3.0) * build_network.edge_weight(s, t), 6))
            for s, t in rng.sample(edges, 4)
        ]
        build_network.apply_updates(updates)
        serving_network.apply_updates(updates)
        scratch_ok = scratch.incremental_rebuild(
            build_network, build_network.pending_delta()
        )
        restored_ok = restored.incremental_rebuild(
            serving_network, serving_network.pending_delta()
        )
        build_network.clear_delta()
        serving_network.clear_delta()
        assert scratch_ok and restored_ok
        assert restored.cycle.signature() == scratch.cycle.signature()
    assert_serves_identically(scratch, restored, seed=5, queries=4)


@pytest.mark.parametrize("name", sorted(SCHEME_PARAMS))
def test_golden_traces_replay_byte_stable_through_store_round_trip(name, tmp_path):
    """The recorded golden session, replayed via artifact -> store -> restore,
    renders byte-identically to the committed fixture."""
    from test_golden_traces import (
        GOLDEN_PARAMS,
        TUNE_IN_FRACTION,
        build_golden_payload,
        fixture_path,
        golden_network,
        golden_query,
        render,
    )

    network = golden_network()
    store = ArtifactStore(tmp_path)
    built = air.create(name, network, **GOLDEN_PARAMS[air.canonical_name(name)])
    store.put(built.artifact())
    artifact = store.get(
        air.canonical_name(name), built._artifact_params(), network.fingerprint()
    )
    assert artifact is not None
    scheme = AirIndexScheme.from_artifact(golden_network(), artifact)

    cycle = scheme.cycle
    offset = int(cycle.total_packets * TUNE_IN_FRACTION) % cycle.total_packets
    source, target = golden_query(scheme.network)
    session = RecordingSession(cycle, offset)
    result = scheme.client().query(source, target, session=session)
    payload = build_golden_payload(name)
    replayed = {
        "answer": {"distance": result.distance, "found": result.found},
        "metrics": {
            "tuning_time_packets": result.metrics.tuning_time_packets,
            "access_latency_packets": result.metrics.access_latency_packets,
        },
        "trace": [
            {
                "kind": op.kind.value,
                "name": op.name,
                "packet_count": op.packet_count,
                "last_offset": op.last_offset,
                "anchor": op.anchor,
            }
            for op in session.trace().ops
        ],
    }
    for key, value in replayed.items():
        assert payload[key] == value, f"{name}: {key} diverged through the store"
    # And the committed fixture is what both render to, byte for byte.
    assert fixture_path(name).read_bytes() == render(payload).encode("utf-8")


class TestFromArtifactValidation:
    def test_network_fingerprint_mismatch_raises(self):
        network = make_network(97)
        scheme = air.create("NR", network, **SCHEME_PARAMS["NR"])
        artifact = scheme.artifact()
        other = make_network(12)
        with pytest.raises(ArtifactMismatchError):
            AirIndexScheme.from_artifact(other, artifact)

    def test_mutated_network_rejects_stale_artifact(self):
        network = make_network(97)
        scheme = air.create("DJ", network)
        artifact = scheme.artifact()
        edge = next(iter(network.edges()))
        network.update_edge_weight(edge.source, edge.target, edge.weight + 1.0)
        with pytest.raises(ArtifactMismatchError):
            AirIndexScheme.from_artifact(network, artifact)

    def test_wrong_scheme_class_raises(self):
        from repro.air.eb import EllipticBoundaryScheme

        network = make_network(97)
        artifact = air.create("NR", network, **SCHEME_PARAMS["NR"]).artifact()
        with pytest.raises(ArtifactMismatchError):
            EllipticBoundaryScheme.from_artifact(network, artifact)


class TestWarmStartFlow:
    def test_warm_started_system_serves_identical_batches(self, tmp_path):
        from repro.experiments import QueryWorkload

        network = make_network(97)
        cold = AirSystem(
            decode_network(encode_network(network)), store=ArtifactStore(tmp_path)
        )
        names = ["DJ", "NR", "EB"]
        for name in names:
            cold.scheme(name, **SCHEME_PARAMS[name])

        # A fresh store handle, as a restarted process would hold (counters
        # are per-instance; the files are shared).
        warm = AirSystem(decode_network(encode_network(network)), store=ArtifactStore(tmp_path))
        # Default params differ from SCHEME_PARAMS, so pre-seed via scheme();
        # warm_start covers the default roster separately below.
        for name in names:
            warm.scheme(name, **SCHEME_PARAMS[name])
        info = warm.cache_info()
        assert info.disk_hits == len(names) and info.disk_misses == 0

        workload = QueryWorkload(network, 12, seed=4)
        for name in names:
            left = cold.query_batch(name, workload, **SCHEME_PARAMS[name])
            right = warm.query_batch(name, workload, **SCHEME_PARAMS[name])
            assert left.mismatches == right.mismatches
            for a, b in zip(left.per_query, right.per_query):
                assert (
                    a.tuning_time_packets,
                    a.access_latency_packets,
                    a.peak_memory_bytes,
                ) == (
                    b.tuning_time_packets,
                    b.access_latency_packets,
                    b.peak_memory_bytes,
                )

    def test_warm_start_reports_loaded_and_missing(self, tmp_path):
        network = make_network(12)
        store = ArtifactStore(tmp_path)
        publisher = AirSystem(network.copy(), store=store)
        publisher.scheme("DJ")
        publisher.scheme("LD")

        system = AirSystem(network.copy(), store=store)
        report = system.warm_start(["DJ", "LD", "NR"])
        assert report.loaded == ("DJ", "LD")
        assert report.missing == ("NR",)
        assert not report.complete
        # Loaded schemes are memory hits now: no build, no further disk read.
        hits_before = store.hits
        system.scheme("DJ")
        assert store.hits == hits_before
        assert system.cache_info().hits == 1

    def test_warm_start_requires_a_store(self):
        system = AirSystem(make_network(12))
        with pytest.raises(ValueError):
            system.warm_start()

    def test_refresh_republishes_and_prune_drops_superseded(self, tmp_path):
        network = make_network(12)
        store = ArtifactStore(tmp_path)
        system = AirSystem(network, store=store)
        system.scheme("DJ")
        old_fingerprint = network.fingerprint()

        edge = next(iter(network.edges()))
        network.update_edge_weight(edge.source, edge.target, edge.weight * 2.0)
        report = system.refresh()
        assert report.artifacts_stored == 1
        # Both fingerprints' artifacts exist until pruned.
        fingerprints = {entry.network_fingerprint for entry in store.entries()}
        assert fingerprints == {old_fingerprint, network.fingerprint()}

        dropped = system.prune_cache()
        assert dropped >= 1
        fingerprints = {entry.network_fingerprint for entry in store.entries()}
        assert fingerprints == {network.fingerprint()}

        # The refreshed artifact warm-starts a fresh process bit-identically.
        fresh = AirSystem(network.copy(), store=store)
        assert fresh.warm_start(["DJ"]).complete
        assert (
            fresh.scheme("DJ").cycle.signature()
            == system.scheme("DJ").cycle.signature()
        )


def test_non_default_record_layout_round_trips():
    """The record layout is part of the built state: an artifact built with
    custom field sizes restores with them (no explicit layout argument)."""
    from repro.air.nr import NextRegionScheme
    from repro.air.records import RecordLayout

    network = make_network(97)
    layout = RecordLayout(node_id_bytes=8, distance_bytes=8)
    scratch = NextRegionScheme(network, num_regions=8, layout=layout)
    restored = AirIndexScheme.from_artifact(
        decode_network(encode_network(network)),
        BuildArtifact.from_bytes(scratch.artifact().to_bytes()),
    )
    assert restored.layout == layout
    assert_serves_identically(scratch, restored, seed=1, queries=3)


def test_disk_restores_are_not_counted_as_builds(tmp_path):
    """CacheInfo.builds means from-scratch constructions, not disk restores."""
    network = make_network(12)
    publisher = AirSystem(network.copy(), store=ArtifactStore(tmp_path))
    publisher.scheme("DJ")
    assert publisher.cache_info().builds == 1

    consumer = AirSystem(network.copy(), store=ArtifactStore(tmp_path))
    consumer.scheme("DJ")
    info = consumer.cache_info()
    assert info.misses == 1 and info.disk_restores == 1
    assert info.builds == 0


def test_explicit_layout_override_is_usable():
    """An explicit layout re-lays the cycle under the new sizing -- equal to
    a scratch build with that layout -- instead of tripping drift detection."""
    from repro.air.nr import NextRegionScheme
    from repro.air.records import RecordLayout

    network = make_network(97)
    artifact = BuildArtifact.from_bytes(
        NextRegionScheme(network, num_regions=8).artifact().to_bytes()
    )
    override = RecordLayout(node_id_bytes=8, distance_bytes=8)
    restored = AirIndexScheme.from_artifact(
        decode_network(encode_network(network)), artifact, layout=override
    )
    assert restored.layout == override
    scratch = NextRegionScheme(network, num_regions=8, layout=override)
    assert restored.cycle.signature() == scratch.cycle.signature()
