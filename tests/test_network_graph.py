"""Unit tests for :mod:`repro.network.graph`."""

import pytest

from repro.network.graph import Edge, Node, RoadNetwork, build_network


def simple_triangle() -> RoadNetwork:
    network = RoadNetwork(name="triangle")
    network.add_node(1, 0.0, 0.0)
    network.add_node(2, 1.0, 0.0)
    network.add_node(3, 0.0, 1.0)
    network.add_edge(1, 2, 5.0)
    network.add_edge(2, 3, 2.0)
    network.add_edge(3, 1, 1.0)
    return network


class TestConstruction:
    def test_add_node_and_lookup(self):
        network = RoadNetwork()
        node = network.add_node(7, 1.5, -2.5)
        assert node == Node(7, 1.5, -2.5)
        assert network.node(7).coordinates() == (1.5, -2.5)
        assert 7 in network
        assert network.has_node(7)

    def test_add_edge_requires_existing_endpoints(self):
        network = RoadNetwork()
        network.add_node(1, 0, 0)
        with pytest.raises(KeyError):
            network.add_edge(1, 2, 1.0)
        with pytest.raises(KeyError):
            network.add_edge(3, 1, 1.0)

    def test_negative_weight_rejected(self):
        network = RoadNetwork()
        network.add_node(1, 0, 0)
        network.add_node(2, 1, 0)
        with pytest.raises(ValueError):
            network.add_edge(1, 2, -0.5)

    def test_bidirectional_edge_adds_both_directions(self):
        network = RoadNetwork()
        network.add_node(1, 0, 0)
        network.add_node(2, 1, 0)
        network.add_bidirectional_edge(1, 2, 3.0)
        assert network.has_edge(1, 2)
        assert network.has_edge(2, 1)
        assert network.num_edges == 2

    def test_build_network_helper(self):
        network = build_network(
            nodes=[(1, 0.0, 0.0), (2, 1.0, 1.0)],
            edges=[(1, 2, 2.5)],
            name="helper",
        )
        assert network.num_nodes == 2
        assert network.edge_weight(1, 2) == 2.5


class TestInspection:
    def test_counts(self):
        network = simple_triangle()
        assert network.num_nodes == 3
        assert network.num_edges == 3
        assert len(network) == 3

    def test_neighbors_and_degrees(self):
        network = simple_triangle()
        assert network.neighbors(1) == [(2, 5.0)]
        assert network.in_neighbors(1) == [(3, 1.0)]
        assert network.out_degree(2) == 1
        assert network.in_degree(2) == 1

    def test_edge_weight_picks_minimum_parallel_edge(self):
        network = simple_triangle()
        network.add_edge(1, 2, 4.0)
        assert network.edge_weight(1, 2) == 4.0

    def test_edge_weight_missing_edge_raises(self):
        network = simple_triangle()
        with pytest.raises(KeyError):
            network.edge_weight(1, 3)

    def test_edges_iteration_yields_all(self):
        network = simple_triangle()
        edges = set((e.source, e.target, e.weight) for e in network.edges())
        assert edges == {(1, 2, 5.0), (2, 3, 2.0), (3, 1, 1.0)}

    def test_edge_reversed(self):
        edge = Edge(1, 2, 3.5)
        assert edge.reversed() == Edge(2, 1, 3.5)

    def test_bounding_box(self):
        network = simple_triangle()
        assert network.bounding_box() == (0.0, 0.0, 1.0, 1.0)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            RoadNetwork().bounding_box()

    def test_euclidean_distance(self):
        network = simple_triangle()
        assert network.euclidean_distance(1, 2) == pytest.approx(1.0)

    def test_total_weight(self):
        assert simple_triangle().total_weight() == pytest.approx(8.0)


class TestDerivedNetworks:
    def test_subgraph_keeps_internal_edges_only(self):
        network = simple_triangle()
        sub = network.subgraph([1, 2])
        assert sub.num_nodes == 2
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(2, 3)
        assert sub.num_edges == 1

    def test_reversed_flips_every_edge(self):
        network = simple_triangle()
        reversed_network = network.reversed()
        assert reversed_network.has_edge(2, 1)
        assert reversed_network.has_edge(3, 2)
        assert reversed_network.has_edge(1, 3)
        assert reversed_network.num_edges == network.num_edges

    def test_copy_is_independent(self):
        network = simple_triangle()
        duplicate = network.copy()
        duplicate.add_node(99, 9, 9)
        assert not network.has_node(99)
        assert duplicate.num_edges == network.num_edges

    def test_validate_passes_on_well_formed_network(self):
        simple_triangle().validate()


class TestConnectivity:
    def test_weakly_connected_single_component(self):
        network = simple_triangle()
        assert network.is_weakly_connected()
        assert len(network.weakly_connected_components()) == 1

    def test_two_components_detected(self):
        network = simple_triangle()
        network.add_node(10, 5, 5)
        network.add_node(11, 6, 6)
        network.add_edge(10, 11, 1.0)
        components = network.weakly_connected_components()
        assert len(components) == 2
        assert not network.is_weakly_connected()

    def test_largest_component_selected(self):
        network = simple_triangle()
        network.add_node(10, 5, 5)  # isolated node
        largest = network.largest_component()
        assert largest.num_nodes == 3
        assert not largest.has_node(10)
