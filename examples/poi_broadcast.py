"""Points of interest on the air: the Appendix A spatial indexes.

Before tackling road networks, air indexing was studied for Euclidean point
data.  This example broadcasts a set of points of interest (fuel stations,
say) with each of the three spatial air indexes the paper reviews -- the
Hilbert Curve Index (HCI), the Distributed Spatial Index (DSI) and the
Broadcast Grid Index (BGI) -- and compares their tuning time and access
latency for range ("what is inside this map tile?") and kNN ("five nearest
stations") queries.

Run with::

    python examples/poi_broadcast.py
"""

from __future__ import annotations

from repro.experiments import report
from repro.spatial import (
    BroadcastGridIndexScheme,
    DistributedSpatialIndexScheme,
    HilbertCurveIndexScheme,
    generate_points,
)

NUM_POINTS = 600


def main() -> None:
    points = generate_points(NUM_POINTS, extent=10_000.0, seed=5, clusters=6)
    schemes = {
        "HCI": HilbertCurveIndexScheme(points, num_data_segments=24),
        "DSI": DistributedSpatialIndexScheme(points, num_frames=48),
        "BGI": BroadcastGridIndexScheme(points, rows=10, cols=10),
    }
    print(f"{NUM_POINTS} points of interest on the air")

    # Center the range query on one of the POI clusters so it has hits, and
    # place the kNN query a little off-cluster.
    anchor = points[0]
    window = (anchor.x - 1_200.0, anchor.y - 1_200.0, anchor.x + 1_200.0, anchor.y + 1_200.0)
    query_x, query_y, k = anchor.x + 800.0, anchor.y - 400.0, 5

    rows = []
    for name, scheme in schemes.items():
        range_result = scheme.range_query(window)
        knn_result = scheme.knn_query(query_x, query_y, k)
        assert range_result.object_ids == scheme.true_range(window)
        assert knn_result.object_ids == scheme.true_knn(query_x, query_y, k)
        rows.append(
            [
                name,
                scheme.cycle.total_packets,
                len(range_result),
                range_result.metrics.tuning_time_packets,
                range_result.metrics.access_latency_packets,
                knn_result.metrics.tuning_time_packets,
                knn_result.metrics.access_latency_packets,
            ]
        )

    print()
    print(
        report.format_table(
            [
                "Index",
                "Cycle (packets)",
                "Range hits",
                "Range tuning",
                "Range latency",
                "kNN tuning",
                "kNN latency",
            ],
            rows,
            title="Euclidean spatial air indexes (Appendix A) on a POI workload",
        )
    )
    print()
    print(
        "These indexes rely on Euclidean geometry (curves, grids, circles) -- "
        "which is exactly why the paper had to design EB and NR for road "
        "networks, where distance is constrained by the graph."
    )


if __name__ == "__main__":
    main()
