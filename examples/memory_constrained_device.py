"""Routing on a memory-starved device (Section 6.1 in action).

Old feature phones -- and, today, deeply embedded receivers -- expose only a
small application heap.  This example runs the same long-distance queries
through the Next Region client twice: once holding every received region
until the final search, and once with the Section 6.1 super-edge compression
that discards region data as soon as it has been condensed.  It then checks
which configuration still fits a shrinking heap budget.

Run with::

    python examples/memory_constrained_device.py
"""

from __future__ import annotations

import random

from repro import air, datasets
from repro.air import ClientOptions
from repro.broadcast.device import DeviceProfile
from repro.broadcast.metrics import average_metrics
from repro.experiments import report
from repro.network.algorithms import shortest_path

NUM_QUERIES = 10


def main() -> None:
    network = datasets.load("argentina", scale=0.01, seed=19)
    scheme = air.create("NR", network, num_regions=8)
    print(
        f"network: {network.name} ({network.num_nodes} nodes); "
        f"{NUM_QUERIES} long-distance queries"
    )

    rng = random.Random(2)
    nodes = network.node_ids()
    queries = []
    while len(queries) < NUM_QUERIES:
        source, target = rng.choice(nodes), rng.choice(nodes)
        if source != target:
            queries.append((source, target))

    results = {}
    for label, memory_bound in (("hold all regions", False), ("super-edge compression", True)):
        # The memory-bound mode is a uniform ClientOptions field; schemes
        # without Section 6.1 support reject it instead of ignoring it.
        client = scheme.client(options=ClientOptions(memory_bound=memory_bound))
        metrics = []
        for source, target in queries:
            outcome = client.query(source, target)
            reference = shortest_path(network, source, target).distance
            assert abs(outcome.distance - reference) <= 1e-6 * max(1.0, reference)
            metrics.append(outcome.metrics)
        results[label] = metrics

    rows = []
    for label, metrics in results.items():
        mean = average_metrics(metrics)
        worst = max(m.peak_memory_bytes for m in metrics)
        rows.append(
            [
                label,
                round(mean.peak_memory_bytes / 1024.0, 1),
                round(worst / 1024.0, 1),
                round(mean.cpu_seconds * 1000.0, 1),
            ]
        )
    print()
    print(
        report.format_table(
            ["Client mode", "Mean peak memory (KB)", "Worst peak (KB)", "Mean CPU (ms)"],
            rows,
            title="NR client with and without Section 6.1 pre-computation",
        )
    )

    # Which heap budgets does each mode survive?
    print()
    worst_plain = max(m.peak_memory_bytes for m in results["hold all regions"])
    worst_bound = max(m.peak_memory_bytes for m in results["super-edge compression"])
    for heap_kb in (128, 64, 48, 32, 24, 16, 12):
        device = DeviceProfile(name=f"{heap_kb}KB-device", heap_bytes=heap_kb * 1024)
        plain_ok = device.fits_in_heap(worst_plain)
        bound_ok = device.fits_in_heap(worst_bound)
        print(
            f"  heap {heap_kb:4d} KB: hold-all {'fits' if plain_ok else 'OUT OF MEMORY':>13} | "
            f"compression {'fits' if bound_ok else 'OUT OF MEMORY':>13}"
        )
    print()
    print("Compression trades client CPU for a smaller working set, exactly "
          "as Figure 13 of the paper reports.")


if __name__ == "__main__":
    main()
