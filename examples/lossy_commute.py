"""Routing over an unreliable broadcast channel during a commute.

Wireless broadcast packets get lost to noise and bad reception (the paper
cites loss rates of up to 10% in practice).  This example follows a single
commuter who re-plans a route every few minutes while the channel's loss rate
varies, and shows how the Next Region method's recovery strategy (Section
6.2) keeps the answers exact while the extra cost stays small compared to the
full-cycle Dijkstra adaptation.

Run with::

    python examples/lossy_commute.py
"""

from __future__ import annotations

import random

from repro import datasets
from repro.broadcast.device import CHANNEL_384KBPS
from repro.engine import AirSystem
from repro.experiments import Query, report
from repro.network.algorithms import shortest_path

LOSS_RATES = [0.0, 0.01, 0.05, 0.10]
REPLANS_PER_RATE = 6


def main() -> None:
    network = datasets.load("germany", scale=0.02, seed=21)
    print(
        f"network: {network.name} ({network.num_nodes} nodes); "
        f"{REPLANS_PER_RATE} route re-plans per loss rate"
    )

    # One system; the NR and DJ cycles are each built exactly once, then
    # reused across every loss rate below.
    system = AirSystem(network)

    rng = random.Random(8)
    nodes = network.node_ids()
    home, office = nodes[1], nodes[-2]
    waypoints = [home] + [rng.choice(nodes) for _ in range(REPLANS_PER_RATE - 1)]
    replans = [
        Query(waypoint, office, shortest_path(network, waypoint, office).distance)
        for waypoint in waypoints
    ]

    rows = []
    for rate in LOSS_RATES:
        for name in ("NR", "DJ"):
            params = {"num_regions": 16} if name == "NR" else {}
            run = system.query_batch(
                name, replans, loss_rate=rate, loss_seed=int(rate * 1000) + 1, **params
            )
            tuning = sum(m.tuning_time_packets for m in run.per_query)
            latency_seconds = sum(
                m.access_latency_seconds(CHANNEL_384KBPS) for m in run.per_query
            )
            exact = run.mismatches == 0
            rows.append(
                [
                    f"{rate * 100:g}%",
                    name,
                    tuning,
                    round(latency_seconds, 2),
                    "yes" if exact else "NO",
                ]
            )

    print()
    print(
        report.format_table(
            ["Loss rate", "Method", "Total tuning (packets)", "Total latency (s)", "Exact routes"],
            rows,
            title="Commute re-planning under packet loss (384 Kbps channel)",
        )
    )
    print()
    print(
        "Both methods stay exact -- lost packets are recovered from later "
        "cycles -- but NR has far fewer packets at risk in the first place."
    )


if __name__ == "__main__":
    main()
