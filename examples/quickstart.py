"""Quickstart: shortest paths on the air in a dozen lines.

Builds a (scaled) stand-in for the paper's Germany road network, lets the
server construct the Next Region (NR) broadcast cycle, and has a client tune
in, receive only what it needs, and compute a shortest path locally.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import air, datasets
from repro.broadcast.device import CHANNEL_2MBPS, J2ME_CLAMSHELL
from repro.network.algorithms import shortest_path


def main() -> None:
    # 1. The road network (a synthetic stand-in with Germany's shape, at 2%
    #    of its size so the example runs in seconds).
    network = datasets.load("germany", scale=0.02, seed=7)
    print(f"network: {network.name} ({network.num_nodes} nodes, {network.num_edges} edges)")

    # 2. Server side: pick the scheme from the registry (any name in
    #    air.available_schemes() works here), pre-compute, lay out the cycle.
    scheme = air.create("NR", network, num_regions=16)
    cycle = scheme.cycle
    print(
        f"broadcast cycle: {cycle.total_packets} packets "
        f"({cycle.duration_seconds(CHANNEL_2MBPS.bits_per_second):.2f} s at 2 Mbps)"
    )

    # 3. Client side: pick a query and process it on the air.
    nodes = network.node_ids()
    source, target = nodes[3], nodes[-3]
    client = scheme.client(J2ME_CLAMSHELL)
    result = client.query(source, target)

    # 4. Compare against plain Dijkstra over the full network.
    reference = shortest_path(network, source, target)
    print(f"query {source} -> {target}")
    print(f"  distance (on air): {result.distance:.1f}")
    print(f"  distance (oracle): {reference.distance:.1f}")
    print(f"  path hops: {len(result.path)}")
    print(f"  regions received: {result.received_regions}")

    metrics = result.metrics
    print("client cost:")
    print(f"  tuning time:    {metrics.tuning_time_packets} packets")
    print(f"  access latency: {metrics.access_latency_packets} packets "
          f"({metrics.access_latency_seconds(CHANNEL_2MBPS):.2f} s at 2 Mbps)")
    print(f"  peak memory:    {metrics.peak_memory_bytes / 1024:.1f} KB")
    print(f"  energy:         {metrics.energy_joules(J2ME_CLAMSHELL, CHANNEL_2MBPS):.3f} J")


if __name__ == "__main__":
    main()
