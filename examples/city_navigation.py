"""City-scale navigation over a broadcast channel.

The scenario the paper's introduction motivates: a city broadcasts its road
network on the air and an arbitrary number of vehicles compute routes locally
-- no location server, no per-query network traffic, and full location
privacy.  This example simulates a small fleet of vehicles issuing navigation
queries at random moments of the broadcast cycle, compares every method the
paper evaluates (Dijkstra, ArcFlag, Landmark, EB, NR), and reports the
averaged client costs plus the per-vehicle battery impact.

Run with::

    python examples/city_navigation.py
"""

from __future__ import annotations

import random

from repro import datasets
from repro.air import (
    ArcFlagBroadcastScheme,
    DijkstraBroadcastScheme,
    EllipticBoundaryScheme,
    LandmarkBroadcastScheme,
    NextRegionScheme,
)
from repro.broadcast.device import CHANNEL_384KBPS, J2ME_CLAMSHELL
from repro.broadcast.metrics import average_metrics
from repro.experiments import report
from repro.network.algorithms import shortest_path

NUM_VEHICLES = 25


def main() -> None:
    network = datasets.load("milan", scale=0.03, seed=11)
    print(
        f"city network: {network.name} ({network.num_nodes} nodes, "
        f"{network.num_edges} edges); {NUM_VEHICLES} vehicles, 384 Kbps channel"
    )

    schemes = {
        "NR": NextRegionScheme(network, num_regions=16),
        "EB": EllipticBoundaryScheme(network, num_regions=16),
        "DJ": DijkstraBroadcastScheme(network),
        "LD": LandmarkBroadcastScheme(network, num_landmarks=4),
        "AF": ArcFlagBroadcastScheme(network, num_regions=16),
    }

    rng = random.Random(3)
    nodes = network.node_ids()
    trips = []
    while len(trips) < NUM_VEHICLES:
        origin, destination = rng.choice(nodes), rng.choice(nodes)
        if origin != destination:
            trips.append((origin, destination))

    rows = []
    for name, scheme in schemes.items():
        channel = scheme.channel()
        client = scheme.client(J2ME_CLAMSHELL)
        per_vehicle = []
        wrong = 0
        for origin, destination in trips:
            result = client.query(origin, destination, channel=channel)
            reference = shortest_path(network, origin, destination).distance
            if abs(result.distance - reference) > 1e-6 * max(1.0, reference):
                wrong += 1
            per_vehicle.append(result.metrics)
        mean = average_metrics(per_vehicle)
        rows.append(
            [
                name,
                mean.tuning_time_packets,
                round(mean.access_latency_seconds(CHANNEL_384KBPS), 2),
                round(mean.peak_memory_bytes / 1024.0, 1),
                round(mean.energy_joules(J2ME_CLAMSHELL, CHANNEL_384KBPS), 3),
                wrong,
            ]
        )

    print()
    print(
        report.format_table(
            [
                "Method",
                "Tuning (packets)",
                "Latency (s)",
                "Memory (KB)",
                "Energy (J)",
                "Wrong routes",
            ],
            rows,
            title="Average per-vehicle cost of one navigation query",
        )
    )
    print()
    print(
        "Note how the broadcast model serves all vehicles for the same server "
        "cost, and how NR minimizes what each vehicle must listen to."
    )


if __name__ == "__main__":
    main()
