"""City-scale navigation over a broadcast channel.

The scenario the paper's introduction motivates: a city broadcasts its road
network on the air and an arbitrary number of vehicles compute routes locally
-- no location server, no per-query network traffic, and full location
privacy.  This example simulates a small fleet of vehicles issuing navigation
queries at random moments of the broadcast cycle, compares every method of
the paper's device experiments through one :class:`AirSystem` batch call, and
reports the averaged client costs plus the per-vehicle battery impact.

Run with::

    python examples/city_navigation.py
"""

from __future__ import annotations

import random

from repro import air, datasets
from repro.broadcast.device import CHANNEL_384KBPS, J2ME_CLAMSHELL
from repro.engine import AirSystem
from repro.experiments import Query, report
from repro.network.algorithms import shortest_path

NUM_VEHICLES = 25


def main() -> None:
    network = datasets.load("milan", scale=0.03, seed=11)
    print(
        f"city network: {network.name} ({network.num_nodes} nodes, "
        f"{network.num_edges} edges); {NUM_VEHICLES} vehicles, 384 Kbps channel"
    )

    # One system object serves every method; regions/landmarks are per-scheme
    # parameters resolved through the registry.
    system = AirSystem(network)
    methods = air.comparison_schemes()

    rng = random.Random(3)
    nodes = network.node_ids()
    trips = []
    while len(trips) < NUM_VEHICLES:
        origin, destination = rng.choice(nodes), rng.choice(nodes)
        if origin != destination:
            truth = shortest_path(network, origin, destination).distance
            trips.append(Query(origin, destination, truth))

    params = {
        "NR": {"num_regions": 16},
        "EB": {"num_regions": 16},
        "LD": {"num_landmarks": 4},
        "AF": {"num_regions": 16},
    }
    rows = []
    for name in methods:
        run = system.query_batch(name, trips, concurrency=4, **params.get(name, {}))
        mean = run.mean
        rows.append(
            [
                name,
                mean.tuning_time_packets,
                round(mean.access_latency_seconds(CHANNEL_384KBPS), 2),
                round(mean.peak_memory_bytes / 1024.0, 1),
                round(mean.energy_joules(J2ME_CLAMSHELL, CHANNEL_384KBPS), 3),
                run.mismatches,
            ]
        )

    print()
    print(
        report.format_table(
            [
                "Method",
                "Tuning (packets)",
                "Latency (s)",
                "Memory (KB)",
                "Energy (J)",
                "Wrong routes",
            ],
            rows,
            title="Average per-vehicle cost of one navigation query",
        )
    )
    print()
    print(
        "Note how the broadcast model serves all vehicles for the same server "
        "cost, and how NR minimizes what each vehicle must listen to."
    )


if __name__ == "__main__":
    main()
