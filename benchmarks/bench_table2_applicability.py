"""Table 2 -- method applicability per network.

Reproduces the paper's Table 2: which methods can run at all on each of the
five road networks given the client device's heap.  The networks are scaled
down (pure-Python pre-computation), so the 8 MB heap of the paper's phone is
scaled by the same factor, which preserves exactly the quantity the table is
about: each method's working set relative to the heap.

Expected shape (paper): ArcFlag and Landmark drop out first, then Dijkstra;
EB survives longer; NR is the only method applicable on every network.
"""

from __future__ import annotations

import pytest

from repro.experiments import method_applicability, report, scaled_device
from repro.network import datasets

from conftest import write_report

METHODS = ["AF", "LD", "DJ", "EB", "NR"]


@pytest.fixture(scope="module")
def applicability(small_bench_config):
    device = scaled_device(small_bench_config.device, small_bench_config.scale)
    results = method_applicability(
        METHODS,
        datasets.available(),
        small_bench_config,
        probe_queries=3,
        device=device,
    )
    return device, results


def test_table2_applicability(benchmark, applicability, small_bench_config):
    device, results = applicability

    # Benchmark the applicability probe for the cheapest method on the
    # smallest network (the per-network loop above runs once per session).
    benchmark.pedantic(
        lambda: method_applicability(
            ["DJ"], ["milan"], small_bench_config, probe_queries=1, device=device
        ),
        rounds=1,
        iterations=1,
    )

    by_network = {}
    for result in results:
        by_network.setdefault(result.network, {})[result.method] = result

    rows = []
    for name in datasets.available():
        spec = datasets.spec(name).scaled(small_bench_config.scale)
        row = [name, spec.num_nodes, spec.num_edges]
        for method in METHODS:
            row.append("yes" if by_network[name][method].applicable else "-")
        rows.append(row)
    table = report.format_table(
        ["Network", "Nodes", "Edges"] + METHODS,
        rows,
        title=(
            "Table 2: method applicability per network "
            f"(scale={small_bench_config.scale}, heap={device.heap_bytes} bytes)"
        ),
    )
    write_report("table2_applicability", table)

    # Shape assertions: NR fits everywhere; every method fits the smallest
    # network; full-cycle methods consume monotonically more memory as the
    # networks grow.
    for name in datasets.available():
        assert by_network[name]["NR"].applicable
    smallest = by_network["milan"]
    assert all(smallest[m].peak_memory_bytes > 0 for m in METHODS)
    ordered = datasets.available()
    for method in ("DJ", "LD", "AF"):
        sizes = [by_network[name][method].peak_memory_bytes for name in ordered]
        assert sizes[0] < sizes[-1]
    # NR's working set is always the smallest of all methods.
    for name in ordered:
        nr_memory = by_network[name]["NR"].peak_memory_bytes
        for method in ("DJ", "LD", "AF"):
            assert nr_memory < by_network[name][method].peak_memory_bytes
