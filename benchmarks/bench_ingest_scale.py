"""Continental-scale ingestion: import rate, build RSS, and bit-identity.

Not a table or figure of the paper: this benchmark prices the front door.
Every continental experiment starts by pulling a DIMACS ``.gr``/``.co``
pair (or an edge-list CSV) through the streaming importers into a columnar
on-disk edge table and compiling it straight to CSR -- no dict
:class:`RoadNetwork` in between.  The benchmark walks a synthetic
ring+chords road network up a scaling curve (10k -> 100k nodes by default,
1M when ``REPRO_INGEST_LARGE_TIER`` is set) and, per tier, measures in a
fresh subprocess each:

* **import** -- ``.gr`` text to columnar chunks; the rate floors at
  ``REPRO_INGEST_MIN_NODES_PER_SEC`` (default 20k nodes/s) at every tier;
* **build** -- columnar chunks to a servable :class:`ColumnarNetwork`;
* **peak RSS** -- both phases' ``ru_maxrss`` growth over an
  imports-loaded baseline must stay under
  ``REPRO_INGEST_MAX_RSS_MULTIPLE`` (default 2.0) times the columnar
  table's on-disk size at tiers of 100k nodes and up (smaller tiers are
  dominated by fixed allocator slack and are recorded, not asserted).

Before any number is trusted, tiers up to 100k nodes are verified
bit-identical against the dict reference: the dict-free CSR arrays must
equal ``from_network(table.to_network())`` element-for-element, and
sampled point-to-point queries through the kernel arena must reproduce
the dict Dijkstra's distances, predecessors, and settled counts exactly.
The env-gated 1M tier skips the dict reference (building it would defeat
the memory story being measured) and sanity-checks query results instead.

Numbers land in ``BENCH_ingest_scale.json`` at the repository root.

Run standalone like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_ingest_scale.py -q
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import subprocess
import sys
import time

import pytest

from repro.network.algorithms import kernel
from repro.network.algorithms.dijkstra import dijkstra_search
from repro.network.csr import CSRGraph
from repro.network.ingest import ColumnarNetwork, open_table

from conftest import write_json_report, write_report

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Rows per columnar chunk.  Deliberately small relative to the tiers so
#: the O(chunk) transient claim is exercised: scatter temporaries scale
#: with the chunk, not the table, and 25k rows keeps them a fraction of
#: the final arrays even at the 100k tier.
CHUNK_ROWS = 25_000

#: Scaling-curve tiers (node counts).  The 1M tier costs ~a minute and a
#: few hundred MB of scratch disk, so it rides behind an env gate.
TIERS = [10_000, 100_000]
if os.environ.get("REPRO_INGEST_LARGE_TIER"):
    TIERS.append(1_000_000)

#: Import-rate floor, nodes ingested per second of import wall time.
#: Measured ~115k nodes/s on the dev container at the 100k tier; the
#: default leaves generous slack for shared CI runners.
MIN_NODES_PER_SEC = float(os.environ.get("REPRO_INGEST_MIN_NODES_PER_SEC", "20000"))

#: Peak-RSS budget for each phase, as a multiple of the columnar table's
#: on-disk bytes.  Asserted at tiers >= ``RSS_ASSERT_FLOOR_NODES``.
MAX_RSS_MULTIPLE = float(os.environ.get("REPRO_INGEST_MAX_RSS_MULTIPLE", "2.0"))
RSS_ASSERT_FLOOR_NODES = 100_000

#: Sampled point-to-point pairs checked against the dict reference.
VERIFY_PAIRS = {10_000: 12, 100_000: 6}

# ----------------------------------------------------------------------
# Synthetic DIMACS generation: a directed ring (guarantees strong
# connectivity) plus 1.5n random chords, integer weights in [1, 1000].
# 2.5n arcs total -- the density of the paper's road networks.
# ----------------------------------------------------------------------


def _write_dimacs(gr_path: pathlib.Path, co_path: pathlib.Path, n: int, seed: int) -> None:
    import numpy as np

    rng = np.random.default_rng(seed)
    ring_src = np.arange(1, n + 1, dtype=np.int64)
    ring_dst = ring_src % n + 1
    chords = int(n * 1.5)
    chord_src = rng.integers(1, n + 1, size=chords, dtype=np.int64)
    # Offset in [1, n-1] keeps chords self-loop free.
    chord_dst = (chord_src - 1 + rng.integers(1, n, size=chords, dtype=np.int64)) % n + 1
    src = np.concatenate([ring_src, chord_src])
    dst = np.concatenate([ring_dst, chord_dst])
    weight = rng.integers(1, 1001, size=len(src), dtype=np.int64)
    with gr_path.open("w") as handle:
        handle.write(f"c synthetic ring+chords n={n} seed={seed}\n")
        handle.write(f"p sp {n} {len(src)}\n")
        np.savetxt(handle, np.column_stack([src, dst, weight]), fmt="a %d %d %d")
    coords = rng.integers(0, 10_000_000, size=(n, 2), dtype=np.int64)
    with co_path.open("w") as handle:
        handle.write(f"p aux sp co {n}\n")
        np.savetxt(
            handle,
            np.column_stack([ring_src, coords]),
            fmt="v %d %d %d",
        )


# ----------------------------------------------------------------------
# Phase subprocesses.  Each phase runs in a fresh interpreter so
# ``ru_maxrss`` (a process-lifetime high-water mark) isolates that
# phase's growth over an imports-loaded baseline.  Every script prints
# one JSON line on stdout.
# ----------------------------------------------------------------------

_RSS_SNIPPET = """
import resource, sys

def _rss_probe():
    # (current, high-water) resident bytes.  ``ru_maxrss`` alone is a
    # process-lifetime peak: interpreter/import transients leave slack
    # above current usage that would swallow the phase entirely, so the
    # delta is taken from current RSS at the baseline to the high-water
    # mark after the phase.
    try:
        fields = {}
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith(("VmRSS:", "VmHWM:")):
                    key, _, value = line.partition(":")
                    fields[key] = int(value.split()[0]) * 1024
        return fields["VmRSS"], fields["VmHWM"]
    except (OSError, KeyError, ValueError):
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        peak *= 1 if sys.platform == "darwin" else 1024
        return peak, peak

# Priced into the baseline, not the phase: scipy is the heaviest resident
# cost and importing it here walks current RSS back up to the high-water
# mark, so the phase's own peak is what moves VmHWM.
import numpy  # noqa: F401
import scipy.sparse.csgraph  # noqa: F401
"""

_IMPORT_PHASE = _RSS_SNIPPET + """
import json, time
from repro.network.ingest import import_dimacs

gr, co, out, chunk = sys.argv[1:5]
rss_base, hwm_base = _rss_probe()
start = time.perf_counter()
table = import_dimacs(gr, out, co_path=co, chunk_rows=int(chunk))
elapsed = time.perf_counter() - start
_, hwm_end = _rss_probe()
stats = table.stats()
print(json.dumps({
    "elapsed": elapsed,
    "rss_delta_bytes": hwm_end - rss_base,
    "rss_slack_bytes": hwm_base - rss_base,
    "table_bytes": table.total_bytes(),
    "num_nodes": stats["num_nodes"],
    "num_edges": stats["num_edges"],
    "fingerprint": stats["fingerprint"],
}))
"""

_BUILD_PHASE = _RSS_SNIPPET + """
import json, time
from repro.network.ingest import ColumnarNetwork, open_table

table = open_table(sys.argv[1])
rss_base, hwm_base = _rss_probe()
start = time.perf_counter()
network = ColumnarNetwork.from_table(table)
elapsed = time.perf_counter() - start
_, hwm_end = _rss_probe()
csr = network.csr_snapshot()
print(json.dumps({
    "elapsed": elapsed,
    "rss_delta_bytes": hwm_end - rss_base,
    "rss_slack_bytes": hwm_base - rss_base,
    "table_bytes": table.total_bytes(),
    "csr_nodes": csr.num_nodes,
    "csr_edges": csr.num_edges,
    "csr_bytes": csr.size_bytes(),
}))
"""


def _run_phase(script: str, *args: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script, *args],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if proc.returncode != 0:
        raise AssertionError(f"phase subprocess failed:\n{proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


# ----------------------------------------------------------------------
# Bit-identity against the dict reference
# ----------------------------------------------------------------------


def _verify_against_dict(table, num_pairs: int) -> int:
    """CSR arrays and sampled p2p queries must match the dict path exactly."""
    csr = ColumnarNetwork.from_table(table).csr_snapshot()
    reference = table.to_network()
    assert reference.csr_snapshot() is None  # dict path, not the kernel
    ref_csr = CSRGraph.from_network(reference)
    for field in (
        "ids",
        "fwd_offsets",
        "fwd_targets",
        "fwd_weights",
        "rev_offsets",
        "rev_targets",
        "rev_weights",
    ):
        assert list(getattr(csr, field)) == list(getattr(ref_csr, field)), field

    arena = kernel.arena_for(csr)
    rng = random.Random(97)
    ids = reference.node_ids()
    pairs = [(rng.choice(ids), rng.choice(ids)) for _ in range(num_pairs)]
    for index, (source, target) in enumerate(pairs):
        want = dijkstra_search(reference, source, target=target)
        got = arena.point_to_point(source, target)
        assert got.distance_to(target) == want.distance_to(target), (source, target)
        if index < 2:
            # Reading the dicts forces the deferred reconstruction: this
            # checks tentative frontier labels, tie-broken predecessors,
            # and discovery order, not just the settled-probe fast path.
            assert got.distances_dict() == want.distances
            assert got.predecessors_dict() == want.predecessors
            assert got.settled == want.settled
    return len(pairs)


def _sanity_queries(table, num_pairs: int) -> int:
    """Large-tier fallback: finite, positive distances through the arena."""
    csr = ColumnarNetwork.from_table(table).csr_snapshot()
    arena = kernel.arena_for(csr)
    rng = random.Random(97)
    ids = csr.ids
    for _ in range(num_pairs):
        source = ids[rng.randrange(len(ids))]
        target = ids[rng.randrange(len(ids))]
        distance = arena.point_to_point(source, target).distance_to(target)
        assert distance >= 0.0 and distance != float("inf"), (source, target)
    return num_pairs


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------


def test_ingest_scaling_curve(tmp_path_factory):
    scratch = tmp_path_factory.mktemp("ingest_scale")
    rows = []
    for tier in TIERS:
        gr_path = scratch / f"tier_{tier}.gr"
        co_path = scratch / f"tier_{tier}.co"
        table_dir = scratch / f"tier_{tier}_table"
        _write_dimacs(gr_path, co_path, tier, seed=13)

        imported = _run_phase(
            _IMPORT_PHASE, str(gr_path), str(co_path), str(table_dir), str(CHUNK_ROWS)
        )
        built = _run_phase(_BUILD_PHASE, str(table_dir))
        assert imported["num_nodes"] == tier
        assert built["csr_nodes"] == tier
        assert built["csr_edges"] == imported["num_edges"]

        table = open_table(table_dir)
        if tier <= 100_000:
            verified = _verify_against_dict(table, VERIFY_PAIRS.get(tier, 6))
            verify_mode = "dict-reference"
        else:
            verified = _sanity_queries(table, 6)
            verify_mode = "sanity-only"

        table_bytes = imported["table_bytes"]
        row = {
            "num_nodes": tier,
            "num_edges": imported["num_edges"],
            "chunk_rows": CHUNK_ROWS,
            "table_bytes": table_bytes,
            "fingerprint": imported["fingerprint"],
            "import_seconds": imported["elapsed"],
            "import_nodes_per_sec": tier / max(imported["elapsed"], 1e-9),
            "import_rss_bytes": imported["rss_delta_bytes"],
            "import_rss_slack_bytes": imported["rss_slack_bytes"],
            "import_rss_multiple": imported["rss_delta_bytes"] / table_bytes,
            "build_seconds": built["elapsed"],
            "build_rss_bytes": built["rss_delta_bytes"],
            "build_rss_slack_bytes": built["rss_slack_bytes"],
            "build_rss_multiple": built["rss_delta_bytes"] / table_bytes,
            "csr_bytes": built["csr_bytes"],
            "verified_pairs": verified,
            "verify_mode": verify_mode,
            "rss_asserted": tier >= RSS_ASSERT_FLOOR_NODES,
        }
        rows.append(row)

        assert row["import_nodes_per_sec"] >= MIN_NODES_PER_SEC, (
            f"tier {tier}: import rate {row['import_nodes_per_sec']:.0f} nodes/s "
            f"under floor {MIN_NODES_PER_SEC:.0f} "
            f"(relax with REPRO_INGEST_MIN_NODES_PER_SEC)"
        )
        if row["rss_asserted"]:
            for phase in ("import", "build"):
                multiple = row[f"{phase}_rss_multiple"]
                assert multiple < MAX_RSS_MULTIPLE, (
                    f"tier {tier}: {phase} peak RSS {multiple:.2f}x the columnar "
                    f"table ({table_bytes / 1e6:.1f} MB) exceeds the "
                    f"{MAX_RSS_MULTIPLE:.1f}x budget "
                    f"(relax with REPRO_INGEST_MAX_RSS_MULTIPLE)"
                )

    payload = {
        "chunk_rows": CHUNK_ROWS,
        "min_nodes_per_sec_floor": MIN_NODES_PER_SEC,
        "max_rss_multiple": MAX_RSS_MULTIPLE,
        "rss_assert_floor_nodes": RSS_ASSERT_FLOOR_NODES,
        "tiers": rows,
    }
    write_json_report("ingest_scale", payload)

    lines = [
        "ingest scaling curve (ring+chords synthetic DIMACS)",
        f"chunk_rows={CHUNK_ROWS} rate_floor={MIN_NODES_PER_SEC:.0f}/s "
        f"rss_budget={MAX_RSS_MULTIPLE:.1f}x",
        "",
        f"{'nodes':>9} {'edges':>9} {'table MB':>9} {'import s':>9} "
        f"{'nodes/s':>9} {'imp RSSx':>9} {'build s':>9} {'bld RSSx':>9} verify",
    ]
    for row in rows:
        lines.append(
            f"{row['num_nodes']:>9} {row['num_edges']:>9} "
            f"{row['table_bytes'] / 1e6:>9.2f} {row['import_seconds']:>9.3f} "
            f"{row['import_nodes_per_sec']:>9.0f} {row['import_rss_multiple']:>9.2f} "
            f"{row['build_seconds']:>9.3f} {row['build_rss_multiple']:>9.2f} "
            f"{row['verify_mode']}"
        )
    write_report("ingest_scale", "\n".join(lines) + "\n")


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
