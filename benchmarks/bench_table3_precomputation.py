"""Table 3 -- server-side pre-computation time per network.

Reproduces the paper's Table 3 (Appendix C.2): the one-off cost of forming
the broadcast cycle for EB/NR (identical by construction), ArcFlag and
Landmark on each of the five road networks.

Expected shape (paper): Landmark is orders of magnitude cheaper than the
border-node methods; EB/NR and ArcFlag are comparable; cost grows steeply
with network size.  Absolute seconds differ (pure Python here vs the paper's
C++ on a 3 GHz machine).
"""

from __future__ import annotations

import pytest

from repro import air
from repro.experiments import ExperimentConfig, report
from repro.network import datasets


def _build(method, network, config):
    """Construct a scheme with its configured parameters (no cycle layout)."""
    return air.create(method, network, **air.params_from_config(method, config))

from conftest import write_report


@pytest.fixture(scope="module")
def precomputation_times(small_bench_config):
    config = ExperimentConfig(
        network=small_bench_config.network,
        scale=min(small_bench_config.scale, 0.01),
        seed=small_bench_config.seed,
        eb_nr_regions=16,
        arcflag_regions=16,
        num_landmarks=4,
    )
    times = {}
    for name in datasets.available():
        network = datasets.load(name, scale=config.scale, seed=config.seed)
        row = {}
        for method in ("EB", "AF", "LD"):
            scheme = _build(method, network, config)
            row[method] = scheme.precomputation_seconds
        times[name] = (network, row)
    return config, times


def test_table3_precomputation_time(benchmark, precomputation_times):
    config, times = precomputation_times

    # Benchmark Landmark pre-computation on the smallest network (the method
    # the paper singles out as cheapest).
    milan, _ = times["milan"]
    benchmark.pedantic(
        lambda: _build("LD", milan, config), rounds=1, iterations=1
    )

    rows = []
    for name in datasets.available():
        network, row = times[name]
        rows.append(
            [
                name,
                network.num_nodes,
                round(row["EB"], 3),
                round(row["AF"], 3),
                round(row["LD"], 3),
            ]
        )
    table = report.format_table(
        ["Network", "Nodes", "EB/NR (s)", "ArcFlag (s)", "Landmark (s)"],
        rows,
        title=f"Table 3: pre-computation time (scale={config.scale}, pure Python)",
    )
    write_report("table3_precomputation", table)

    # Shape assertions: Landmark is always the cheapest; pre-computation on
    # the largest network costs more than on the smallest (for the
    # border-node based methods).
    for name in datasets.available():
        _, row = times[name]
        assert row["LD"] < row["EB"]
        assert row["LD"] < row["AF"]
    assert times["san_francisco"][1]["EB"] > times["milan"][1]["EB"]
