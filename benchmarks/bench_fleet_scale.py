"""Fleet scaling -- shared-session replay vs naive per-device simulation.

Not a table or figure of the paper: the paper evaluates one client at a
time, while a broadcast cycle serves an unbounded audience.  This benchmark
puts a rush-hour fleet on one cached NR cycle and measures devices/second
for three ways of serving it:

* **naive** -- every device runs the full client protocol on its own
  session: per-packet channel simulation plus a local shortest path
  computation per device;
* **replay** -- the fleet simulator's shared-session fast path: one probe
  session per distinct query, O(ops) packet arithmetic per further device;
* **replay x4** -- the same, fanned out over a thread pool.

Asserted invariants: the replay path is >= 4x the naive path at 1,000
devices, and fleet results are bit-identical for ``concurrency`` in {1, 4}.
(The floor was 10x when the naive baseline ran the dict Dijkstra per
device; the array SP kernel made the naive path itself ~7x faster, which
compresses the *ratio* while both absolute throughputs improved --
replay measured ~28k devices/s vs ~13.5k before the kernel.)

Run standalone like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_scale.py -q
"""

from __future__ import annotations

import time

import pytest

from repro.broadcast.channel import ClientSession
from repro.engine import AirSystem
from repro.experiments import build_network, fleet_rush_hour, report
from repro.fleet import simulate_fleet

from conftest import write_json_report, write_report

METHOD = "NR"
FLEET_SIZES = (200, 1_000)
#: Acceptance criterion: replay throughput vs naive at the largest fleet
#: (see the module docstring for why this floor moved with the SP kernel).
MIN_SPEEDUP = 4.0


def _naive_devices_per_second(scheme, devices) -> float:
    """Simulate every device natively: own session, full client protocol."""
    cycle = scheme.cycle
    client = scheme.client()
    started = time.perf_counter()
    for spec in devices:
        offset = int(spec.tune_in_fraction * cycle.total_packets) % cycle.total_packets
        result = client.query(spec.source, spec.target, session=ClientSession(cycle, offset))
        assert result.found
    return len(devices) / (time.perf_counter() - started)


@pytest.fixture(scope="module")
def system(small_bench_config):
    return AirSystem(build_network(small_bench_config), config=small_bench_config)


def test_fleet_scale_replay_vs_naive(system, small_bench_config):
    scheme = system.scheme(METHOD)
    rows = []
    speedup_at_largest = 0.0
    for num_devices in FLEET_SIZES:
        devices = fleet_rush_hour(
            system.network, num_devices, seed=small_bench_config.seed, hot_pairs=24
        )
        # Best of two timed passes per path: shields the hard speedup assert
        # below from one-off scheduler noise on shared CI runners.
        naive = max(_naive_devices_per_second(scheme, devices) for _ in range(2))

        sequential = max(
            (simulate_fleet(scheme, devices, concurrency=1) for _ in range(2)),
            key=lambda run: run.devices_per_second,
        )
        threaded = simulate_fleet(scheme, devices, concurrency=4)
        assert sequential.mismatches == threaded.mismatches == 0
        # Determinism contract: bit-identical across concurrency settings.
        assert sequential.signature() == threaded.signature()
        assert sequential.replays == num_devices

        speedup = sequential.devices_per_second / naive
        speedup_at_largest = speedup
        rows.append(
            [
                num_devices,
                sequential.probes,
                round(naive),
                round(sequential.devices_per_second),
                round(threaded.devices_per_second),
                round(speedup, 1),
            ]
        )

    table = report.format_table(
        [
            "Devices",
            "Probes",
            "Naive (dev/s)",
            "Replay (dev/s)",
            "Replay x4 (dev/s)",
            "Speedup",
        ],
        rows,
        title=(
            f"Fleet scaling on {METHOD} -- {system.network.name} "
            f"(scale={small_bench_config.scale}, rush-hour scenario)"
        ),
    )
    write_report("fleet_scale", table)
    write_json_report(
        "fleet_scale",
        {
            "method": METHOD,
            "scale": small_bench_config.scale,
            "min_speedup_floor": MIN_SPEEDUP,
            "by_fleet_size": [
                {
                    "devices": row[0],
                    "probes": row[1],
                    "naive_devices_per_second": row[2],
                    "replay_devices_per_second": row[3],
                    "replay_x4_devices_per_second": row[4],
                    "speedup": row[5],
                }
                for row in rows
            ],
        },
    )

    assert speedup_at_largest >= MIN_SPEEDUP, (
        f"shared-session replay is only {speedup_at_largest:.1f}x the naive "
        f"path at {FLEET_SIZES[-1]} devices (need >= {MIN_SPEEDUP}x)"
    )
