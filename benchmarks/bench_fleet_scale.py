"""Fleet scaling -- vectorized replay vs scalar replay vs naive simulation.

Not a table or figure of the paper: the paper evaluates one client at a
time, while a broadcast cycle serves an unbounded audience.  This benchmark
puts a rush-hour fleet on one cached NR cycle and measures devices/second
along three axes:

* **naive vs replay** (the legacy tiers, 200 and 1,000 devices) -- every
  device running the full client protocol on its own session, against the
  fleet simulator's shared-session fast path; also guards the thread-pool
  non-regression: replay is inline bulk arithmetic, so the pooled run (whose
  workers only serve probes) must not fall behind the sequential one;
* **bulk kernel vs scalar replay** (10^4 devices) -- the vectorized
  :func:`~repro.broadcast.replay_bulk.replay_trace_bulk` against the
  per-device :func:`~repro.broadcast.replay.replay_trace` loop on the same
  trace and tune-in offsets, bit-identity checked on the way;
* **the scaling curve** (10^4 and 10^5 devices; 10^6 when
  ``REPRO_FLEET_SCALE_FULL=1``) -- end-to-end ``simulate_fleet``
  devices/second per tier, written into ``BENCH_fleet_scale.json``.

Floors (override via environment for slower CI runners):

* ``REPRO_FLEET_MIN_SPEEDUP`` (default 4) -- replay vs naive at 1,000
  devices.  (Was 10x when the naive baseline ran the dict Dijkstra per
  device; the array SP kernel made the naive path itself ~7x faster.)
* ``REPRO_FLEET_BULK_MIN_SPEEDUP`` (default 10) -- bulk kernel vs the
  scalar replay loop at 10^4 devices.
* ``REPRO_FLEET_BULK_MIN_DPS`` (default 250,000) -- best end-to-end
  devices/second point on the scaling curve.
* ``REPRO_FLEET_POOL_FLOOR`` (default 0.7) -- pooled-vs-sequential
  throughput ratio at the largest legacy tier.

Run standalone like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_scale.py -q
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.broadcast.channel import ClientSession
from repro.broadcast.replay import RecordingSession, replay_trace
from repro.broadcast.replay_bulk import TraceTable, numpy_or_none, replay_trace_bulk
from repro.engine import AirSystem
from repro.experiments import build_network, fleet_rush_hour, report
from repro.fleet import simulate_fleet

from conftest import write_json_report, write_report

METHOD = "NR"
FLEET_SIZES = (200, 1_000)
CURVE_SIZES = (10_000, 100_000) + (
    (1_000_000,) if os.environ.get("REPRO_FLEET_SCALE_FULL") == "1" else ()
)

MIN_SPEEDUP = float(os.environ.get("REPRO_FLEET_MIN_SPEEDUP", "4"))
BULK_MIN_SPEEDUP = float(os.environ.get("REPRO_FLEET_BULK_MIN_SPEEDUP", "10"))
BULK_MIN_DPS = float(os.environ.get("REPRO_FLEET_BULK_MIN_DPS", "250000"))
POOL_FLOOR = float(os.environ.get("REPRO_FLEET_POOL_FLOOR", "0.7"))

#: Accumulated across the tests in definition order; every test re-writes
#: the JSON with whatever is filled in so far, so the file on disk is
#: complete after a full run and still useful after a partial one.
_payload: dict = {
    "method": METHOD,
    "min_speedup_floor": MIN_SPEEDUP,
    "bulk_min_speedup_floor": BULK_MIN_SPEEDUP,
    "bulk_min_devices_per_second_floor": BULK_MIN_DPS,
    "pool_regression_floor": POOL_FLOOR,
}


def _flush(**sections) -> None:
    _payload.update(sections)
    write_json_report("fleet_scale", _payload)


def _naive_devices_per_second(scheme, devices) -> float:
    """Simulate every device natively: own session, full client protocol."""
    cycle = scheme.cycle
    client = scheme.client()
    started = time.perf_counter()
    for spec in devices:
        offset = int(spec.tune_in_fraction * cycle.total_packets) % cycle.total_packets
        result = client.query(spec.source, spec.target, session=ClientSession(cycle, offset))
        assert result.found
    return len(devices) / (time.perf_counter() - started)


@pytest.fixture(scope="module")
def system(small_bench_config):
    return AirSystem(build_network(small_bench_config), config=small_bench_config)


def test_fleet_scale_replay_vs_naive(system, small_bench_config):
    scheme = system.scheme(METHOD)
    rows = []
    speedup_at_largest = 0.0
    pool_ratio_at_largest = 0.0
    for num_devices in FLEET_SIZES:
        devices = fleet_rush_hour(
            system.network, num_devices, seed=small_bench_config.seed, hot_pairs=24
        )
        # Best of two timed passes per path: shields the hard speedup assert
        # below from one-off scheduler noise on shared CI runners.
        naive = max(_naive_devices_per_second(scheme, devices) for _ in range(2))

        sequential = max(
            (simulate_fleet(scheme, devices, concurrency=1) for _ in range(2)),
            key=lambda run: run.devices_per_second,
        )
        threaded = max(
            (simulate_fleet(scheme, devices, concurrency=4) for _ in range(2)),
            key=lambda run: run.devices_per_second,
        )
        assert sequential.mismatches == threaded.mismatches == 0
        # Determinism contract: bit-identical across concurrency settings.
        assert sequential.signature() == threaded.signature()
        assert sequential.replays == num_devices

        speedup = sequential.devices_per_second / naive
        speedup_at_largest = speedup
        pool_ratio_at_largest = (
            threaded.devices_per_second / sequential.devices_per_second
        )
        rows.append(
            [
                num_devices,
                sequential.probes,
                round(naive),
                round(sequential.devices_per_second),
                round(threaded.devices_per_second),
                round(speedup, 1),
            ]
        )

    table = report.format_table(
        [
            "Devices",
            "Probes",
            "Naive (dev/s)",
            "Replay (dev/s)",
            "Replay x4 (dev/s)",
            "Speedup",
        ],
        rows,
        title=(
            f"Fleet scaling on {METHOD} -- {system.network.name} "
            f"(scale={small_bench_config.scale}, rush-hour scenario)"
        ),
    )
    write_report("fleet_scale", table)
    _flush(
        scale=small_bench_config.scale,
        by_fleet_size=[
            {
                "devices": row[0],
                "probes": row[1],
                "naive_devices_per_second": row[2],
                "replay_devices_per_second": row[3],
                "replay_x4_devices_per_second": row[4],
                "speedup": row[5],
            }
            for row in rows
        ],
    )

    assert speedup_at_largest >= MIN_SPEEDUP, (
        f"shared-session replay is only {speedup_at_largest:.1f}x the naive "
        f"path at {FLEET_SIZES[-1]} devices (need >= {MIN_SPEEDUP}x)"
    )
    # Replay runs inline; the pool only serves probes, so threading must not
    # regress throughput (it used to, when bulk arithmetic was pushed
    # through per-device thread handoffs).
    assert pool_ratio_at_largest >= POOL_FLOOR, (
        f"pooled run reached only {pool_ratio_at_largest:.2f}x the sequential "
        f"throughput at {FLEET_SIZES[-1]} devices (floor {POOL_FLOOR})"
    )


def test_bulk_kernel_speedup_vs_scalar_replay(system):
    """The vectorized kernel vs the per-device replay loop, same inputs."""
    if numpy_or_none() is None:
        pytest.skip("bulk replay kernel requires numpy")
    np = numpy_or_none()
    scheme = system.scheme(METHOD)
    cycle = scheme.cycle
    client = scheme.client()
    rng = random.Random(29)
    node_ids = sorted(system.network.node_ids())
    source, target = node_ids[3], node_ids[-5]
    session = RecordingSession(cycle, 0)
    client.query(source, target, session=session)
    trace = session.trace()
    offsets = [rng.randrange(cycle.total_packets) for _ in range(10_000)]

    scalar_best = 0.0
    bulk_best = 0.0
    for _ in range(2):
        started = time.perf_counter()
        scalar = [replay_trace(trace, cycle, offset) for offset in offsets]
        scalar_best = max(scalar_best, len(offsets) / (time.perf_counter() - started))

        started = time.perf_counter()
        layout = cycle.compiled_layout()
        table = TraceTable.compile(trace, layout)
        bulk = replay_trace_bulk(table, layout, np.asarray(offsets, dtype=np.int64))
        bulk_best = max(bulk_best, len(offsets) / (time.perf_counter() - started))

    # Bit-identity on the way (the property suite covers this exhaustively).
    assert bulk.tuning_packets == scalar[0].tuning_packets
    assert [int(v) for v in bulk.access_latency_packets] == [
        outcome.access_latency_packets for outcome in scalar
    ]

    speedup = bulk_best / scalar_best
    _flush(
        bulk_kernel={
            "devices": len(offsets),
            "trace_ops": len(trace.ops),
            "scalar_replays_per_second": round(scalar_best),
            "bulk_replays_per_second": round(bulk_best),
            "speedup": round(speedup, 1),
        }
    )
    assert speedup >= BULK_MIN_SPEEDUP, (
        f"bulk kernel is only {speedup:.1f}x the scalar replay loop at "
        f"{len(offsets)} devices (need >= {BULK_MIN_SPEEDUP}x)"
    )


def test_fleet_scaling_curve(system, small_bench_config):
    """End-to-end devices/second per fleet tier (the scaling curve)."""
    scheme = system.scheme(METHOD)
    curve = []
    best_dps = 0.0
    for num_devices in CURVE_SIZES:
        devices = fleet_rush_hour(
            system.network, num_devices, seed=small_bench_config.seed, hot_pairs=24
        )
        run = max(
            (simulate_fleet(scheme, devices, concurrency=1) for _ in range(2)),
            key=lambda candidate: candidate.devices_per_second,
        )
        assert run.mismatches == 0
        assert run.replays == num_devices
        best_dps = max(best_dps, run.devices_per_second)
        curve.append(
            {
                "devices": num_devices,
                "probes": run.probes,
                "devices_per_second": round(run.devices_per_second),
                "wall_seconds": round(run.wall_seconds, 4),
            }
        )

    rows = [
        [point["devices"], point["probes"], point["devices_per_second"], point["wall_seconds"]]
        for point in curve
    ]
    table = report.format_table(
        ["Devices", "Probes", "Fleet (dev/s)", "Wall (s)"],
        rows,
        title=f"Fleet scaling curve on {METHOD} (vectorized replay, end to end)",
    )
    write_report("fleet_scale_curve", table)
    _flush(
        scaling_curve=curve,
        best_devices_per_second=round(best_dps),
    )
    assert best_dps >= BULK_MIN_DPS, (
        f"best end-to-end throughput on the scaling curve is "
        f"{best_dps:,.0f} devices/s (floor {BULK_MIN_DPS:,.0f})"
    )
