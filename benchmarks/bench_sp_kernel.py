"""Array SP kernel vs the dict Dijkstra -- the repo's core perf trajectory.

Not a table or figure of the paper: this benchmark prices the engine room.
Every layer -- air-index clients, EB/NR/HiTi/Landmark/ArcFlag
pre-computation, fleet and dynamic ground truth -- bottoms out in a
shortest path search, so the kernel's speedup multiplies through build and
query throughput alike.  Measured on the 1k-node network:

* **SSSP** -- full single-source sweeps, the pre-computation workhorse
  (asserted >= 3x by default; ``REPRO_KERNEL_MIN_SPEEDUP`` relaxes the
  floor for noisy CI runners);
* **point-to-point** -- distance queries in the workload generator's shape
  (``point_to_point(s, t).distance_to(t)``): one compiled sweep plus an
  O(n) rank count answers the query, with tree reconstruction deferred
  until a consumer reads it (asserted >= 2x by default via
  ``REPRO_KERNEL_MIN_P2P_SPEEDUP``);
* **border many-to-many** -- the batched sweep pattern of
  ``BorderPathPrecomputation`` (with predecessors, chunked accelerator
  calls; asserted >= 1.5x by default via
  ``REPRO_KERNEL_MIN_M2M_SPEEDUP``).

Answers are verified bit-identical in-bench before any timing is trusted,
and the numbers land in ``BENCH_sp_kernel.json`` at the repository root.

Run standalone like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_sp_kernel.py -q
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.experiments import report
from repro.network.algorithms import kernel
from repro.network.algorithms.dijkstra import (
    dijkstra_distances,
    dijkstra_search,
    shortest_path,
)
from repro.network.generators import GeneratorConfig, generate_road_network
from repro.partitioning.kdtree import build_kdtree_partitioning

from conftest import write_json_report, write_report

#: The 1k-node benchmark network (kept in line with bench_dynamic_updates).
NETWORK_CONFIG = GeneratorConfig(num_nodes=1000, num_edges=2600, seed=31)
NUM_SSSP_SOURCES = 40
NUM_QUERIES = 120
NUM_BORDER_REGIONS = 16
#: Acceptance floor on the SSSP speedup; CI relaxes it to 1.5 for noisy
#: shared runners (and for environments without the scipy accelerator,
#: where only the flat-buffer win remains).
MIN_SSSP_SPEEDUP = float(os.environ.get("REPRO_KERNEL_MIN_SPEEDUP", "3.0"))
_HAVE_ACCEL = kernel.numpy_or_none() is not None
#: Floors on the point-to-point and many-to-many speedups.  Both ride on
#: the scipy accelerator, so without it only the faithful loop's
#: flat-buffer win remains and the defaults drop to 1.0.
MIN_P2P_SPEEDUP = float(
    os.environ.get("REPRO_KERNEL_MIN_P2P_SPEEDUP", "2.0" if _HAVE_ACCEL else "1.0")
)
MIN_M2M_SPEEDUP = float(
    os.environ.get("REPRO_KERNEL_MIN_M2M_SPEEDUP", "1.5" if _HAVE_ACCEL else "1.0")
)


@pytest.fixture(scope="module")
def network():
    net = generate_road_network(NETWORK_CONFIG, name="bench-kernel-1k")
    net.clear_delta()
    return net


@pytest.fixture(scope="module")
def reference(network):
    """A snapshot-less copy: every search on it takes the dict path."""
    ref = network.copy()
    ref.clear_delta()
    assert ref.csr_snapshot() is None
    return ref


def _verify_bit_identity(network, reference, sources, pairs) -> None:
    arena = kernel.arena_for(network.ensure_csr())
    for source in sources[:5]:
        want = dijkstra_distances(reference, source)
        got = arena.sssp(source)
        assert got.distances_dict() == want.distances
        assert got.predecessors_dict() == want.predecessors
        assert got.settled == want.settled
    # Point-to-point: reading the dicts forces the deferred reconstruction,
    # so this checks the full truncated replay -- tentative frontier labels,
    # tie-broken predecessors, discovery order -- not just the fast probe.
    for source, target in pairs[:5]:
        want = dijkstra_search(reference, source, target=target)
        got = arena.point_to_point(source, target)
        assert got.distance_to(target) == want.distance_to(target)
        assert got.distances_dict() == want.distances
        assert got.predecessors_dict() == want.predecessors
        assert got.settled == want.settled


def test_kernel_vs_dict_dijkstra(network, reference):
    rng = random.Random(7)
    ids = network.node_ids()
    sources = rng.sample(ids, NUM_SSSP_SOURCES)
    pairs = [(rng.choice(ids), rng.choice(ids)) for _ in range(NUM_QUERIES)]
    partitioning = build_kdtree_partitioning(network, NUM_BORDER_REGIONS)
    borders = [
        node
        for region in range(partitioning.num_regions)
        for node in partitioning.border_nodes(region)
    ]

    arena = kernel.arena_for(network.ensure_csr())
    _verify_bit_identity(network, reference, sources, pairs)

    # Warm-up: build the accelerator's lazy views (matrices, edge arrays)
    # and touch every code path once so the timings below compare steady
    # states, not first-call construction.
    arena.sssp(sources[0], need_predecessors=False)
    arena.sssp(sources[0], need_predecessors=True, reverse=True)
    arena.point_to_point(*pairs[0]).distance_to(pairs[0][1])
    arena.many_to_many(borders[:4], need_predecessors=True)
    dijkstra_distances(reference, sources[0])

    # -- SSSP: full sweeps, distance labels ----------------------------
    started = time.perf_counter()
    for source in sources:
        dijkstra_distances(reference, source)
    dict_sssp = time.perf_counter() - started
    started = time.perf_counter()
    for source in sources:
        arena.sssp(source, need_predecessors=False)
    kernel_sssp = time.perf_counter() - started

    # -- SSSP with predecessors (the precomputation shape) -------------
    started = time.perf_counter()
    for source in sources:
        arena.sssp(source, need_predecessors=True)
    kernel_sssp_pred = time.perf_counter() - started

    # -- point-to-point (distance queries, the workload generator's
    #    shape: dict side early-terminates, kernel side sweeps compiled
    #    and answers off the converged labels) -------------------------
    started = time.perf_counter()
    for source, target in pairs:
        shortest_path(reference, source, target)
    dict_p2p = time.perf_counter() - started
    started = time.perf_counter()
    for source, target in pairs:
        arena.point_to_point(source, target).distance_to(target)
    kernel_p2p = time.perf_counter() - started

    # -- border many-to-many (with predecessors, as EB/NR need) --------
    started = time.perf_counter()
    for source in borders:
        dijkstra_distances(reference, source)
    dict_many = time.perf_counter() - started
    started = time.perf_counter()
    arena.many_to_many(borders, need_predecessors=True)
    kernel_many = time.perf_counter() - started

    sssp_speedup = dict_sssp / kernel_sssp
    rows = [
        [
            "sssp (distances)",
            NUM_SSSP_SOURCES,
            round(dict_sssp * 1000.0, 1),
            round(kernel_sssp * 1000.0, 1),
            f"{sssp_speedup:.1f}x",
        ],
        [
            "sssp (+predecessors)",
            NUM_SSSP_SOURCES,
            round(dict_sssp * 1000.0, 1),
            round(kernel_sssp_pred * 1000.0, 1),
            f"{dict_sssp / kernel_sssp_pred:.1f}x",
        ],
        [
            "point-to-point",
            NUM_QUERIES,
            round(dict_p2p * 1000.0, 1),
            round(kernel_p2p * 1000.0, 1),
            f"{dict_p2p / kernel_p2p:.1f}x",
        ],
        [
            f"border many-to-many ({len(borders)} sources)",
            len(borders),
            round(dict_many * 1000.0, 1),
            round(kernel_many * 1000.0, 1),
            f"{dict_many / kernel_many:.1f}x",
        ],
    ]
    table = report.format_table(
        ["Workload", "Runs", "Dict (ms)", "Kernel (ms)", "Speedup"],
        rows,
        title=(
            f"Array SP kernel vs dict Dijkstra -- {network.name} "
            f"({network.num_nodes} nodes, {network.num_edges} edges, "
            f"accelerator={'on' if kernel.numpy_or_none() is not None else 'off'})"
        ),
    )
    write_report("sp_kernel", table)
    write_json_report(
        "sp_kernel",
        {
            "network": {
                "nodes": network.num_nodes,
                "edges": network.num_edges,
                "fingerprint": network.fingerprint(),
            },
            "accelerator": kernel.numpy_or_none() is not None,
            "min_sssp_speedup_floor": MIN_SSSP_SPEEDUP,
            "sssp": {
                "runs": NUM_SSSP_SOURCES,
                "dict_seconds": dict_sssp,
                "kernel_seconds": kernel_sssp,
                "kernel_with_predecessors_seconds": kernel_sssp_pred,
                "speedup": sssp_speedup,
            },
            "point_to_point": {
                "runs": NUM_QUERIES,
                "dict_seconds": dict_p2p,
                "kernel_seconds": kernel_p2p,
                "speedup": dict_p2p / kernel_p2p,
                "min_speedup_floor": MIN_P2P_SPEEDUP,
            },
            "border_many_to_many": {
                "sources": len(borders),
                "dict_seconds": dict_many,
                "kernel_seconds": kernel_many,
                "speedup": dict_many / kernel_many,
                "min_speedup_floor": MIN_M2M_SPEEDUP,
            },
        },
    )

    assert sssp_speedup >= MIN_SSSP_SPEEDUP, (
        f"kernel SSSP is only {sssp_speedup:.2f}x the dict Dijkstra "
        f"(floor {MIN_SSSP_SPEEDUP}x)"
    )
    p2p_speedup = dict_p2p / kernel_p2p
    assert p2p_speedup >= MIN_P2P_SPEEDUP, (
        f"kernel point-to-point is only {p2p_speedup:.2f}x the dict "
        f"Dijkstra (floor {MIN_P2P_SPEEDUP}x)"
    )
    m2m_speedup = dict_many / kernel_many
    assert m2m_speedup >= MIN_M2M_SPEEDUP, (
        f"kernel many-to-many is only {m2m_speedup:.2f}x the dict "
        f"Dijkstra (floor {MIN_M2M_SPEEDUP}x)"
    )
