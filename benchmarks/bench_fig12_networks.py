"""Figure 12 -- performance across the five road networks (Appendix C.3).

Reproduces the paper's Figure 12: tuning time, memory, access latency and CPU
time of every applicable method on each of the five networks (Milan through
San Francisco), with every method fine-tuned per network.

Expected shape (paper): costs grow with network size for every method; NR is
consistently the best and the only method that works everywhere; the
full-cycle methods degrade fastest because they receive and store the whole
(growing) cycle.
"""

from __future__ import annotations

import pytest

from repro import air
from repro.engine import AirSystem
from repro.experiments import QueryWorkload, report
from repro.network import datasets

from conftest import write_report

COMPARISON_METHODS = air.comparison_schemes()


@pytest.fixture(scope="module")
def per_network_runs(small_bench_config):
    config = small_bench_config
    runs = {}
    systems = {}
    for name in datasets.available():
        system = AirSystem.from_config(config, network_name=name)
        workload = QueryWorkload(system.network, config.num_queries, seed=config.seed)
        systems[name] = system
        runs[name] = (system.network, system.compare(COMPARISON_METHODS, workload))
    return systems, runs


def test_figure12_different_networks(benchmark, per_network_runs, small_bench_config):
    systems, runs = per_network_runs

    # Benchmark one NR query on the largest network (the scheme and its
    # cycle come straight out of the system's cache).
    largest_name = datasets.available()[-1]
    largest_network, largest_runs = runs[largest_name]
    nodes = largest_network.node_ids()
    client = systems[largest_name].client("NR")
    benchmark(lambda: client.query(nodes[3], nodes[-3]))

    lines = [
        "Figure 12: performance across networks "
        f"(scale={small_bench_config.scale}, x axis = {datasets.available()})"
    ]
    for metric_name, getter in (
        ("Tuning time (packets)", lambda m: m.tuning_time_packets),
        ("Memory (KB)", lambda m: m.peak_memory_bytes / 1024.0),
        ("Access latency (packets)", lambda m: m.access_latency_packets),
        ("CPU time (ms)", lambda m: m.cpu_seconds * 1000.0),
    ):
        lines.append("")
        lines.append(f"-- {metric_name} --")
        for method in COMPARISON_METHODS:
            series = {
                name: float(getter(runs[name][1][method].mean))
                for name in datasets.available()
            }
            lines.append(report.format_series(method, series))
    write_report("fig12_networks", "\n".join(lines))

    # Shape assertions.
    for name, (_, method_runs) in runs.items():
        for run in method_runs.values():
            assert run.mismatches == 0
        # NR is the best method on tuning time and memory on every network.
        nr = method_runs["NR"].mean
        for other in ("DJ", "LD", "AF"):
            assert nr.tuning_time_packets <= method_runs[other].mean.tuning_time_packets
            assert nr.peak_memory_bytes <= method_runs[other].mean.peak_memory_bytes
    # Every method costs more on the largest network than on the smallest.
    smallest = datasets.available()[0]
    largest = datasets.available()[-1]
    for method in COMPARISON_METHODS:
        assert (
            runs[largest][1][method].mean.tuning_time_packets
            > runs[smallest][1][method].mean.tuning_time_packets
        )
