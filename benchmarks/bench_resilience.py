"""Resilience under chaos -- availability, identity and MTTR of the daemon.

Not a table or figure of the paper: the acceptance benchmark for the
fault-injection and recovery layer.  The serving daemon is driven through
the ``smoke`` chaos scenario (worker SIGKILLs mid-request, dropped,
truncated and bit-flipped response frames, one refresh forced to fail
mid-rebuild) while a reconnecting client fleet issues a duplicate-heavy
query burst under end-to-end deadlines.  Three floors are asserted:

* **Availability** -- the fraction of requests answered ``ok`` within
  their deadline must reach ``REPRO_RESILIENCE_MIN_AVAILABILITY``
  (default 0.99): every injected failure is survivable within one
  request budget.
* **Bit identity** -- zero violations.  Every answer is checked twice
  over: against the direct in-process system's ground truth for the
  served fingerprint, and for self-consistency across the duplicated
  pairs.  Chaos may cost latency, never a wrong answer.
* **MTTR** -- the monitor's detection-to-respawn time for SIGKILLed
  workers stays under ``REPRO_RESILIENCE_MAX_MTTR_S`` (default 5 s).

The benchmark also measures what resilience costs when *disabled*: the
per-call overhead of a dormant injection point (no plan installed) and of
an installed plan probing a non-matching point -- the "faults off by
default, zero overhead" claim, in nanoseconds.

Run standalone like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -q
"""

from __future__ import annotations

import os
import random
import time
from typing import List, Tuple

import pytest

from repro.engine import AirSystem
from repro.experiments import report
from repro.faults import FaultPlan, FaultSpec, build_scenario
from repro.faults import runtime as fault_runtime
from repro.faults.chaos import run_chaos
from repro.serving import ServeConfig, ServerHandle, ServingClient

from conftest import write_json_report, write_report

NETWORK, SCALE, SEED = "milan", 0.01, 3
NUM_REGIONS = 8
METHOD = "NR"
WORKERS = 2
#: Duplicate-heavy burst: 60 unique pairs issued twice, so the identity
#: check compares answers across connections and across worker respawns.
NUM_REQUESTS = 120
CLIENT_CONNECTIONS = 4
DEADLINE_MS = 5000.0
SCENARIO = "chaos-smoke"

#: Acceptance floors; CI can tighten or relax through the environment.
MIN_AVAILABILITY = float(os.environ.get("REPRO_RESILIENCE_MIN_AVAILABILITY", "0.99"))
MAX_MTTR_S = float(os.environ.get("REPRO_RESILIENCE_MAX_MTTR_S", "5.0"))

#: Dormant-path overhead budget per ``inject()`` call.  The point of the
#: bound is the *order of magnitude*: a dormant injection point must cost a
#: dict-free attribute load, not a lock or an allocation.
MAX_INJECT_NS = 2000.0
OVERHEAD_CALLS = 200_000


def _serve_config() -> ServeConfig:
    return ServeConfig(
        network=NETWORK,
        scale=SCALE,
        seed=SEED,
        regions=NUM_REGIONS,
        methods=(METHOD,),
        workers=WORKERS,
        max_pending=16,
    )


def _pairs(system: AirSystem) -> List[Tuple[int, int]]:
    rng = random.Random(SEED)
    nodes = system.network.node_ids()
    unique = [
        (rng.choice(nodes), rng.choice(nodes)) for _ in range(NUM_REQUESTS // 2)
    ]
    return (unique * 2)[:NUM_REQUESTS]


def _inject_overhead_ns(calls: int) -> Tuple[float, float]:
    """Per-call cost of a dormant point: (no plan, non-matching plan)."""
    fault_runtime.clear()
    started = time.perf_counter()
    for _ in range(calls):
        fault_runtime.inject("bench.dormant")
    no_plan = (time.perf_counter() - started) / calls * 1e9

    fault_runtime.install(
        FaultPlan([FaultSpec("bench.other.point", times=1)], seed=0)
    )
    try:
        started = time.perf_counter()
        for _ in range(calls):
            fault_runtime.inject("bench.dormant")
        non_matching = (time.perf_counter() - started) / calls * 1e9
    finally:
        fault_runtime.clear()
    return no_plan, non_matching


def test_availability_identity_and_mttr_under_smoke_chaos():
    direct = AirSystem.from_config(_serve_config().experiment_config())
    pairs = _pairs(direct)
    options = direct.default_options.replace(tune_in_offset=0)
    old_fingerprint = direct.network.fingerprint()
    truth = {
        (source, target): direct.query(METHOD, source, target, options=options).distance
        for source, target in set(pairs)
    }

    def reference(fingerprint: str, source: int, target: int):
        if fingerprint != old_fingerprint:
            return None  # a successfully refreshed cycle has no table here
        return truth.get((source, target))

    edges = list(direct.network.edges())[:4]
    updates = [(e.source, e.target, e.weight * 1.7) for e in edges]

    handle = ServerHandle.launch(_serve_config())
    try:
        # Baseline: the identical burst with no plan installed.
        baseline = run_chaos(
            handle.address,
            None,
            pairs,
            method=METHOD,
            concurrency=CLIENT_CONNECTIONS,
            deadline_ms=DEADLINE_MS,
            reference=reference,
        )
        assert baseline.availability == 1.0
        assert baseline.identity_violations == 0

        chaos = run_chaos(
            handle.address,
            build_scenario("smoke", seed=SEED),
            pairs,
            method=METHOD,
            concurrency=CLIENT_CONNECTIONS,
            deadline_ms=DEADLINE_MS,
            refreshes=[updates],
            reference=reference,
        )

        # The daemon must come out of the run healthy and plan-free.
        with ServingClient(handle.address) as client:
            info = client.info()
        assert info["faults"] is None
        assert all(row["alive"] for row in info["workers"])
    finally:
        handle.stop()

    no_plan_ns, non_matching_ns = _inject_overhead_ns(OVERHEAD_CALLS)

    fired = chaos.fault_stats.get("fired") or {}
    degraded = sum(1 for r in chaos.refreshes if r.get("degraded"))
    mttr = chaos.mttr_s
    rows = [
        ["requests ok / total", f"{chaos.ok} / {chaos.requests}"],
        ["availability (floor)", f"{chaos.availability:.4f} ({MIN_AVAILABILITY:g})"],
        ["baseline availability", f"{baseline.availability:.4f}"],
        ["identity violations", chaos.identity_violations],
        ["deadline misses", chaos.deadline_misses],
        ["reconnects", chaos.reconnects],
        ["stale responses", chaos.stale_responses],
        ["worker respawns", chaos.respawns],
        ["MTTR (s, bound)", (f"{mttr:.3f}" if mttr is not None else "-")
         + f" ({MAX_MTTR_S:g})"],
        ["refreshes (degraded)", f"{len(chaos.refreshes)} ({degraded})"],
        ["faults fired", ", ".join(
            f"{point}:{count}" for point, count in sorted(fired.items())
        ) or "-"],
        ["inject ns/call (no plan)", round(no_plan_ns, 1)],
        ["inject ns/call (non-matching plan)", round(non_matching_ns, 1)],
        ["chaos duration (s)", round(chaos.duration_s, 3)],
        ["baseline duration (s)", round(baseline.duration_s, 3)],
    ]
    text = report.format_table(
        ["Quantity", "Value"],
        rows,
        title=(
            f"Resilience: {NUM_REQUESTS} x {METHOD} on "
            f"{direct.network.name} ({direct.network.num_nodes} nodes) under "
            f"'smoke' chaos via {CLIENT_CONNECTIONS} connections"
        ),
    )
    write_report("resilience", text)
    write_json_report(
        "resilience",
        {
            "network": {
                "name": direct.network.name,
                "num_nodes": direct.network.num_nodes,
                "num_edges": direct.network.num_edges,
            },
            "method": METHOD,
            "workers": WORKERS,
            "scenario": "smoke",
            "num_requests": NUM_REQUESTS,
            "deadline_ms": DEADLINE_MS,
            "availability": chaos.availability,
            "min_availability": MIN_AVAILABILITY,
            "identity_violations": chaos.identity_violations,
            "deadline_misses": chaos.deadline_misses,
            "reconnects": chaos.reconnects,
            "stale_responses": chaos.stale_responses,
            "respawns": chaos.respawns,
            "mttr_s": mttr,
            "max_mttr_s": MAX_MTTR_S,
            "refreshes": chaos.refreshes,
            "faults_fired": fired,
            "faults_total_fired": chaos.fault_stats.get("total_fired", 0),
            "inject_ns_no_plan": no_plan_ns,
            "inject_ns_non_matching_plan": non_matching_ns,
            "max_inject_ns": MAX_INJECT_NS,
            "baseline": {
                "availability": baseline.availability,
                "duration_s": baseline.duration_s,
            },
            "chaos_duration_s": chaos.duration_s,
        },
    )

    # Zero wrong answers, ever: chaos costs latency, never identity.
    assert chaos.identity_violations == 0
    # The smoke kills actually landed and were repaired quickly.
    assert chaos.respawns >= 1
    assert mttr is not None and mttr <= MAX_MTTR_S, (
        f"worst worker recovery took {mttr}s (bound {MAX_MTTR_S:g}s)"
    )
    # The forced refresh failure degraded instead of killing the daemon.
    assert degraded >= 1
    assert chaos.availability >= MIN_AVAILABILITY, (
        f"availability {chaos.availability:.4f} under 'smoke' chaos "
        f"(floor {MIN_AVAILABILITY:g})"
    )
    # Dormant injection points are effectively free.
    assert no_plan_ns <= MAX_INJECT_NS
    assert non_matching_ns <= MAX_INJECT_NS


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
