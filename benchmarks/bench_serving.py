"""Serving daemon -- throughput scaling across workers over one shared index.

Not a table or figure of the paper: the acceptance benchmark for the
broadcast serving daemon.  The paper's server feeds an unbounded client
population from one broadcast cycle; the daemon realizes that as a pool of
worker processes mapping a single shared-memory publication of the index.
Because a served query's cost is dominated by emulated air time (the
``pace_packet_us`` channel pacing -- latency in this model is on-air
packets, not CPU), adding workers must add throughput: this benchmark
drives an identical query burst at pools of 1, 2 and 4 workers and
requires **>= 2x** queries/second from 1 -> 4 workers (floor overridable
through ``REPRO_SERVING_MIN_SCALING`` for noisy CI runners).

Two more claims are asserted in-bench rather than taken on faith:

* **Bit identity** -- a sample of served answers (distance plus tuning and
  latency packet counts) must equal a direct in-process
  :class:`~repro.engine.AirSystem` over the same configuration, same
  tune-in offset.
* **Sharing, not copying** -- each worker's ``/proc`` smaps accounting of
  the segment mapping must show the index resident as shared pages with
  (near) zero private-dirty pages; N workers, one physical index.

Launches after the first warm-start from an on-disk artifact store, so the
three pools pay the index build exactly once.

Run standalone like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Tuple

import pytest

from repro.engine import AirSystem
from repro.experiments import report
from repro.serving import ServeConfig, ServerHandle, ServingClient, run_load

from conftest import write_json_report, write_report

#: ~1k-node evaluation network (germany at this scale realizes ~1000 nodes).
NETWORK, SCALE, SEED = "germany", 0.035, 31
NUM_REGIONS = 16
METHOD = "NR"
#: Worker pool sizes under test.
POOLS: Tuple[int, ...] = (1, 2, 4)
#: Emulated on-air channel time per broadcast packet.  At ~2-4k packets of
#: access latency per query this makes one query tens of milliseconds of
#: air time -- the regime the paper's model describes, and the reason
#: worker count (not CPU count) governs throughput.
PACE_PACKET_US = 15.0
#: One identical burst per pool size.
NUM_REQUESTS = 96
CLIENT_CONNECTIONS = 8
IDENTITY_SAMPLE = 12
TUNE_IN_OFFSET = 0

#: Local acceptance floor; CI can relax via REPRO_SERVING_MIN_SCALING.
MIN_SCALING = float(os.environ.get("REPRO_SERVING_MIN_SCALING", "2.0"))


def _serve_config(workers: int, store_dir: str) -> ServeConfig:
    return ServeConfig(
        network=NETWORK,
        scale=SCALE,
        seed=SEED,
        regions=NUM_REGIONS,
        methods=(METHOD,),
        workers=workers,
        max_pending=32,
        pace_packet_us=PACE_PACKET_US,
        store_dir=store_dir,
    )


def _query_pairs(system: AirSystem) -> List[Tuple[int, int]]:
    rng = random.Random(SEED)
    nodes = system.network.node_ids()
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(NUM_REQUESTS)]


def test_serving_scales_with_workers_and_stays_bit_identical(tmp_path):
    store_dir = str(tmp_path / "store")
    # The reference build also seeds the store the daemon launches from.
    from repro.store import ArtifactStore

    direct = AirSystem.from_config(
        _serve_config(1, store_dir).experiment_config(), store=ArtifactStore(store_dir)
    )
    direct.scheme(METHOD)
    pairs = _query_pairs(direct)
    options = direct.default_options.replace(tune_in_offset=TUNE_IN_OFFSET)

    runs: Dict[int, Dict] = {}
    sharing_rows: List[List] = []
    identity_checked = 0
    for workers in POOLS:
        handle = ServerHandle.launch(_serve_config(workers, store_dir))
        try:
            with ServingClient(handle.address) as client:
                info = client.info()
                # Bit identity: a served answer equals the direct system's.
                for source, target in pairs[:IDENTITY_SAMPLE]:
                    served = client.query(
                        METHOD, source, target, tune_in_offset=TUNE_IN_OFFSET
                    )
                    expected = direct.query(METHOD, source, target, options=options)
                    assert served["distance"] == expected.distance
                    assert (
                        served["tuning_time_packets"]
                        == expected.metrics.tuning_time_packets
                    )
                    assert (
                        served["access_latency_packets"]
                        == expected.metrics.access_latency_packets
                    )
                    identity_checked += 1
            load = run_load(
                handle.address,
                pairs,
                method=METHOD,
                concurrency=CLIENT_CONNECTIONS,
                tune_in_offset=TUNE_IN_OFFSET,
            )
            assert load.errors == 0
            assert load.requests == NUM_REQUESTS
            segment_kb = info["segment_bytes"] / 1024.0
            worker_stats = []
            for row in info["workers"]:
                mapping = row.get("segment_mapping")
                worker_stats.append(
                    {
                        "worker": row["worker"],
                        "pid": row["pid"],
                        "rss_kb": row.get("rss_kb"),
                        "segment_mapping": mapping,
                    }
                )
                if mapping is not None:
                    # The proof the index is shared rather than copied: the
                    # mapping's pages are not private-dirty.  (A copied
                    # index would show up as ~segment_kb of private pages.)
                    assert mapping["private_dirty_kb"] <= max(16, segment_kb * 0.1)
                    sharing_rows.append(
                        [
                            workers,
                            row["worker"],
                            round(segment_kb, 1),
                            mapping["rss_kb"],
                            mapping["shared_kb"],
                            mapping["private_dirty_kb"],
                        ]
                    )
            runs[workers] = {
                "qps": load.qps,
                "duration_s": load.duration_s,
                "requests": load.requests,
                "busy_retries": load.busy_retries,
                "latency_ms": load.latency_ms,
                "per_worker_responses": load.workers,
                "segment_bytes": info["segment_bytes"],
                "workers": worker_stats,
            }
        finally:
            handle.stop()

    scaling = runs[POOLS[-1]]["qps"] / runs[POOLS[0]]["qps"]
    rows = [
        [
            workers,
            round(run["qps"], 1),
            round(run["duration_s"], 2),
            round(run["latency_ms"]["p50"], 1),
            round(run["latency_ms"]["p99"], 1),
            run["busy_retries"],
        ]
        for workers, run in sorted(runs.items())
    ]
    text = report.format_table(
        ["Workers", "QPS", "Wall (s)", "p50 (ms)", "p99 (ms)", "Busy retries"],
        rows,
        title=(
            f"Serving throughput: {NUM_REQUESTS} x {METHOD} on "
            f"{direct.network.name} ({direct.network.num_nodes} nodes), "
            f"pace {PACE_PACKET_US:g} us/pkt -> "
            f"{POOLS[0]}->{POOLS[-1]} workers = {scaling:.2f}x "
            f"(floor {MIN_SCALING:g}x)"
        ),
    )
    text += "\n" + report.format_table(
        ["Pool", "Worker", "Segment (KB)", "Mapped RSS (KB)", "Shared (KB)", "Private dirty (KB)"],
        sharing_rows,
        title="Shared-memory accounting (one physical index per pool)",
    )
    write_report("serving", text)
    write_json_report(
        "serving",
        {
            "network": {
                "name": direct.network.name,
                "num_nodes": direct.network.num_nodes,
                "num_edges": direct.network.num_edges,
            },
            "method": METHOD,
            "pace_packet_us": PACE_PACKET_US,
            "num_requests": NUM_REQUESTS,
            "client_connections": CLIENT_CONNECTIONS,
            "identity_checked": identity_checked,
            "identity_ok": True,
            "scaling_1_to_4": scaling,
            "min_scaling": MIN_SCALING,
            "pools": {str(workers): run for workers, run in runs.items()},
        },
    )
    assert identity_checked == IDENTITY_SAMPLE * len(POOLS)
    assert scaling >= MIN_SCALING, (
        f"throughput scaled only {scaling:.2f}x from {POOLS[0]} to "
        f"{POOLS[-1]} workers (floor {MIN_SCALING:g}x)"
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
