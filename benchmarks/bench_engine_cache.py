"""Engine cycle cache -- cold builds vs cached reuse.

Not a table or figure of the paper: a smoke benchmark for the
:class:`~repro.engine.system.AirSystem` facade.  It measures how long the
first (cold) construction of each comparison scheme takes -- kd partitioning,
border-path pre-computation, cycle layout -- against a second (cached) pass
over the same ``(scheme, params, network)`` keys, and asserts the cache
actually short-circuits the rebuild.

Run standalone like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_cache.py -q
"""

from __future__ import annotations

import time

import pytest

from repro import air
from repro.engine import AirSystem
from repro.experiments import QueryWorkload, build_network, report

from conftest import write_json_report, write_report

METHODS = air.comparison_schemes()


@pytest.fixture(scope="module")
def cache_timings(small_bench_config):
    system = AirSystem(build_network(small_bench_config), config=small_bench_config)
    timings = {}
    for method in METHODS:
        started = time.perf_counter()
        system.scheme(method)
        cold = time.perf_counter() - started
        started = time.perf_counter()
        system.scheme(method)
        warm = time.perf_counter() - started
        timings[method] = (cold, warm)
    return system, timings


def test_engine_cache_hits_skip_rebuilds(benchmark, cache_timings, small_bench_config):
    system, timings = cache_timings

    info = system.cache_info()
    assert info.misses == len(METHODS)
    assert info.hits >= len(METHODS)
    assert info.entries == len(METHODS)

    # Cached lookups must return the very same built scheme object.
    assert system.scheme("NR") is system.scheme("NR")
    # ...while different parameters are a different cache entry.
    system.scheme("NR", num_regions=max(4, small_bench_config.eb_nr_regions // 2))
    assert system.cache_info().entries == len(METHODS) + 1

    # Benchmark the cached lookup itself (should be microseconds).
    benchmark(lambda: system.scheme("EB"))

    rows = []
    for method in METHODS:
        cold, warm = timings[method]
        speedup = cold / warm if warm > 0 else float("inf")
        rows.append(
            [method, round(cold * 1000.0, 2), round(warm * 1000.0, 4), round(speedup, 1)]
        )
    table = report.format_table(
        ["Method", "Cold build (ms)", "Cached (ms)", "Speedup"],
        rows,
        title=(
            "Engine cycle cache: cold vs cached scheme construction -- "
            f"{system.network.name} (scale={small_bench_config.scale})"
        ),
    )
    write_report("engine_cache", table)
    write_json_report(
        "engine_cache",
        {
            "scale": small_bench_config.scale,
            "by_scheme": [
                {
                    "scheme": method,
                    "cold_build_ms": round(timings[method][0] * 1000.0, 3),
                    "cached_ms": round(timings[method][1] * 1000.0, 4),
                }
                for method in METHODS
            ],
        },
    )

    for method, (cold, warm) in timings.items():
        assert warm < cold, f"{method}: cached access not faster than cold build"


def test_engine_batch_reuses_cycles(cache_timings, small_bench_config):
    """A whole comparison sweep after the warm-up adds zero cache misses."""
    system, _ = cache_timings
    misses_before = system.cache_info().misses
    workload = QueryWorkload(system.network, 4, seed=small_bench_config.seed)
    runs = system.compare(METHODS, workload)
    assert system.cache_info().misses == misses_before
    for run in runs.values():
        assert run.mismatches == 0
