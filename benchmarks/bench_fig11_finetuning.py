"""Figure 11 -- method fine-tuning (Appendix C.1).

Reproduces the paper's Figure 11: tuning time, memory, access latency and
CPU time of every method while sweeping the number of regions (EB, NR,
ArcFlag) and landmarks (Landmark).  Dijkstra is the flat reference.

Expected shape (paper): for EB and NR too few regions mean loose pruning and
too many mean heavy indexes (a U-shaped tuning-time curve), while access
latency only grows with the number of regions because the cycle gets longer;
Landmark's growing vectors make it progressively worse.
"""

from __future__ import annotations

import pytest

from repro.experiments import QueryWorkload, build_network, finetune_sweep, report

from conftest import write_report

#: Regions swept; the paper uses 16/32/64/128 on full-size Germany.  The
#: scaled network keeps the same sweep so the U-shape is visible.
SETTINGS = [8, 16, 32, 64]
METHODS = ("NR", "EB", "DJ", "LD", "AF")


@pytest.fixture(scope="module")
def sweep(bench_config):
    network = build_network(bench_config)
    workload = QueryWorkload(
        network, max(8, bench_config.num_queries // 2), seed=bench_config.seed
    )
    points = finetune_sweep(
        network,
        list(workload),
        bench_config,
        settings=SETTINGS,
        methods=METHODS,
        max_arcflag_regions=16,
    )
    return network, points


def test_figure11_finetuning(benchmark, sweep, bench_config):
    network, points = sweep

    # Benchmark one NR query at the paper's tuned setting (the second point).
    tuned = points[1].runs["NR"]
    nodes = network.node_ids()
    from repro import air

    scheme = air.create("NR", network, **air.params_from_config("NR", bench_config))
    client = scheme.client()
    benchmark(lambda: client.query(nodes[0], nodes[-1]))

    lines = [
        f"Figure 11: fine-tuning -- {network.name} (scale={bench_config.scale}); "
        f"x axis: regions/landmarks = {[p.regions for p in points]} / "
        f"{[p.landmarks for p in points]}"
    ]
    for metric_name, getter in (
        ("Tuning time (packets)", lambda m: m.tuning_time_packets),
        ("Memory (KB)", lambda m: m.peak_memory_bytes / 1024.0),
        ("Access latency (packets)", lambda m: m.access_latency_packets),
        ("CPU time (ms)", lambda m: m.cpu_seconds * 1000.0),
    ):
        lines.append("")
        lines.append(f"-- {metric_name} --")
        for method in METHODS:
            series = {}
            for point in points:
                if method not in point.runs:
                    continue
                series[f"{point.regions}/{point.landmarks}"] = float(
                    getter(point.runs[method].mean)
                )
            lines.append(report.format_series(method, series))
    write_report("fig11_finetuning", "\n".join(lines))

    # Shape assertions.
    for point in points:
        for run in point.runs.values():
            assert run.mismatches == 0
    # NR's access latency grows with the number of regions (longer cycle).
    nr_latency = [p.runs["NR"].mean.access_latency_packets for p in points]
    assert nr_latency[0] < nr_latency[-1]
    # Landmark's tuning time grows with the number of landmarks.
    ld_tuning = [p.runs["LD"].mean.tuning_time_packets for p in points]
    assert ld_tuning[0] < ld_tuning[-1]
    # At the well-tuned settings (the left half of the sweep) NR's tuning
    # time stays below Dijkstra's; at the far right the oversized local
    # indexes erode the advantage, which is exactly the trade-off the paper's
    # fine-tuning experiment is about.
    for point in points[:2]:
        assert (
            point.runs["NR"].mean.tuning_time_packets
            < point.runs["DJ"].mean.tuning_time_packets
        )
    assert tuned.mean.tuning_time_packets > 0
