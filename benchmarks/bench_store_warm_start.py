"""Build/serve split -- cold build vs ``warm_start()`` from a populated store.

Not a table or figure of the paper: the acceptance benchmark for the
build/serve split.  The paper's server "repeatedly transmits identical
broadcast cycles" -- the cycle is a static artifact of ``(network, scheme,
params)`` -- so a production deployment should pay the Table 3
pre-computation once, not on every restart, deploy, or shard spawn.  This
benchmark builds the scheme roster cold over the ~1k-node network, publishes
every build to an :class:`~repro.store.ArtifactStore`, then simulates a
process restart: a fresh :class:`~repro.engine.AirSystem` over a freshly
generated (identical) network calls :meth:`warm_start` and must come up
**>= 5x** faster than the cold build (floor overridable through
``REPRO_STORE_MIN_SPEEDUP`` for noisy CI runners).

Bit identity is asserted in-bench: for every scheme, a query through the
warm-started instance must match the cold build's answer, path, and
tuning/latency packet counts exactly, and the cycle signatures must be
equal.

SPQ is excluded from the roster: its 1k-node build runs one full Dijkstra
plus a quad-tree construction *per node* (minutes of wall clock), which is
exactly the kind of cost the store amortizes but too slow for a CI smoke
step.  The exclusion is printed in the report rather than silently applied.

Run standalone like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_store_warm_start.py -q
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

import pytest

from repro.engine import AirSystem, ArtifactStore
from repro.experiments import ExperimentConfig, report
from repro.network.generators import GeneratorConfig, generate_road_network

from conftest import write_json_report, write_report

#: The 1k-node benchmark network (same generator as the dynamic-updates
#: benchmark; the realized size shrinks slightly because the generator
#: keeps the largest component).
NETWORK_CONFIG = GeneratorConfig(num_nodes=1000, num_edges=2300, seed=31)
NUM_REGIONS = 16
#: Scheme roster the warm start covers (every registered scheme but SPQ).
SCHEMES: List[str] = ["DJ", "NR", "EB", "HiTi", "AF", "LD"]
EXCLUDED = {"SPQ": "per-node Dijkstra + quad-tree build is minutes at 1k nodes"}

#: Local acceptance floor; CI relaxes via REPRO_STORE_MIN_SPEEDUP.
MIN_SPEEDUP = float(os.environ.get("REPRO_STORE_MIN_SPEEDUP", "5.0"))

#: Fixed probe query endpoints (node ids are 0..n-1 in generator order).
PROBE_QUERY: Tuple[int, int] = (17, 801)
PROBE_OFFSET = 123


def _config() -> ExperimentConfig:
    return ExperimentConfig(
        network="germany",
        scale=0.05,
        seed=31,
        eb_nr_regions=NUM_REGIONS,
        arcflag_regions=NUM_REGIONS,
        hiti_regions=NUM_REGIONS,
        num_landmarks=4,
    )


def _network():
    network = generate_road_network(NETWORK_CONFIG, name="bench-store-1k")
    network.clear_delta()
    return network


def _probe(system: AirSystem, name: str):
    scheme = system.scheme(name)
    result = scheme.client().query(*PROBE_QUERY, tune_in_offset=PROBE_OFFSET)
    return (
        result.distance,
        tuple(result.path),
        result.metrics.tuning_time_packets,
        result.metrics.access_latency_packets,
    )


def test_store_warm_start_speedup(tmp_path_factory):
    store_root = tmp_path_factory.mktemp("artifact-store")
    config = _config()

    # Cold: one from-scratch build per scheme, no store involved.
    cold_system = AirSystem(_network(), config=config)
    cold_seconds: Dict[str, float] = {}
    for name in SCHEMES:
        started = time.perf_counter()
        cold_system.scheme(name)
        cold_seconds[name] = time.perf_counter() - started
    cold_total = sum(cold_seconds.values())

    # Publish (not part of either timed path; reported for context).
    store = ArtifactStore(store_root)
    started = time.perf_counter()
    artifact_bytes = 0
    for name in SCHEMES:
        path = store.put(cold_system.scheme(name).artifact())
        artifact_bytes += path.stat().st_size
    publish_seconds = time.perf_counter() - started

    # Warm: a fresh process would regenerate/reload its network and restore
    # every scheme from the store instead of rebuilding.
    warm_system = AirSystem(_network(), config=config, store=ArtifactStore(store_root))
    started = time.perf_counter()
    warm_report = warm_system.warm_start(SCHEMES)
    warm_total = time.perf_counter() - started
    assert warm_report.complete, f"missing from store: {warm_report.missing}"
    assert set(warm_report.loaded) == set(SCHEMES)
    info = warm_system.cache_info()
    assert info.disk_hits == len(SCHEMES) and info.disk_misses == 0

    # Bit identity: answers, packet metrics, and cycle layouts must match.
    for name in SCHEMES:
        assert (
            warm_system.scheme(name).cycle.signature()
            == cold_system.scheme(name).cycle.signature()
        ), f"{name}: warm cycle differs from cold build"
        assert _probe(warm_system, name) == _probe(cold_system, name), (
            f"{name}: warm-started scheme answers differently"
        )

    speedup = cold_total / warm_total if warm_total > 0 else float("inf")
    per_scheme_rows = [
        [name, round(cold_seconds[name], 3)] for name in SCHEMES
    ]
    lines = [
        report.format_table(
            ["Scheme", "Cold build (s)"],
            per_scheme_rows,
            title=(
                f"Store warm start on {cold_system.network.name} "
                f"({cold_system.network.num_nodes} nodes, "
                f"{cold_system.network.num_edges} edges)"
            ),
        ),
        "",
        f"cold build total : {cold_total:8.3f} s",
        f"publish to store : {publish_seconds:8.3f} s "
        f"({artifact_bytes / 1024:.0f} KB, {len(SCHEMES)} artifacts)",
        f"warm_start()     : {warm_total:8.3f} s",
        f"speedup          : {speedup:8.1f}x (floor {MIN_SPEEDUP:g}x)",
        "",
        "excluded from roster: "
        + "; ".join(f"{name} ({why})" for name, why in EXCLUDED.items()),
    ]
    write_report("store_warm_start", "\n".join(lines))
    write_json_report(
        "store_warm_start",
        {
            "network": {
                "nodes": cold_system.network.num_nodes,
                "edges": cold_system.network.num_edges,
            },
            "schemes": SCHEMES,
            "excluded": EXCLUDED,
            "cold_seconds": {k: round(v, 4) for k, v in cold_seconds.items()},
            "cold_total_seconds": round(cold_total, 4),
            "publish_seconds": round(publish_seconds, 4),
            "artifact_bytes": artifact_bytes,
            "warm_start_seconds": round(warm_total, 4),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SPEEDUP,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm_start() only {speedup:.1f}x faster than a cold build "
        f"(floor {MIN_SPEEDUP:g}x)"
    )
