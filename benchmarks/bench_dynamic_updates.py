"""Dynamic networks -- incremental cycle refresh vs full rebuild.

Not a table or figure of the paper: the paper's network is static, while a
production broadcast server must absorb a continuous stream of edge-weight
updates (congestion, closures).  This benchmark applies batches of
single-partition weight updates to a ~1k-node network and measures, per
scheme, the cycle-refresh throughput of

* **full** -- what a static system does after any mutation: rebuild the
  scheme (pre-computation included) from scratch, and
* **incremental** -- the engine's :meth:`AirSystem.refresh` routed through
  :meth:`AirIndexScheme.incremental_rebuild`: reuse weight-independent
  segments and re-run only the affected parts of the pre-computation.

Asserted invariants: the incrementally refreshed cycle is **bit-identical**
to a from-scratch build after every stream (compared via
``BroadcastCycle.signature()``), and the speedup meets a per-scheme floor --
>= 5x for the delta-local schemes (DJ's cycle reuse, HiTi's dirty-block
super-edge recompute).  NR's floor is intentionally loose: its
border-path refresh re-runs every border source whose shortest path tree a
changed edge sits on, and on a sparse road network a random edge lies on a
large fraction of those trees, so NR's speedup is workload-dependent (ramps
that re-touch the same hot edges prune far better than fresh random edges).

Run standalone like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_dynamic_updates.py -q
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import pytest

from repro import air
from repro.engine import AirSystem
from repro.experiments import report
from repro.network.generators import GeneratorConfig, generate_road_network
from repro.partitioning.kdtree import build_kdtree_partitioning

from conftest import write_json_report, write_report

#: The 1k-node benchmark network (realized size shrinks slightly because the
#: generator keeps the largest component).
NETWORK_CONFIG = GeneratorConfig(num_nodes=1000, num_edges=2300, seed=31)
NUM_REGIONS = 16
#: The partition whose internal edges the update batches touch.
TARGET_REGION = 5
EDGES_PER_BATCH = 3

#: (scheme, params, batches to time, speedup floor).  DJ and HiTi refresh
#: strictly delta-locally and carry the >= 5x acceptance criterion.  NR's
#: affected-source refresh is exact but workload-dependent (see module doc):
#: its floor only asserts the incremental path is never slower than a full
#: rebuild -- structurally guaranteed, since it runs a subset of the same
#: work (measured ~1.1x on this congest/recover schedule, more when
#: congestion persists instead of oscillating).
SCHEMES: List[Tuple[str, Dict[str, int], int, float]] = [
    ("DJ", {}, 40, 5.0),
    ("HiTi", {"num_regions": NUM_REGIONS}, 10, 5.0),
    ("NR", {"num_regions": NUM_REGIONS}, 4, 1.0),
]


@pytest.fixture(scope="module")
def network():
    net = generate_road_network(NETWORK_CONFIG, name="bench-dynamic-1k")
    net.clear_delta()
    return net


@pytest.fixture(scope="module")
def update_batches(network):
    """Alternating congest/restore batches confined to one kd partition."""
    partitioning = build_kdtree_partitioning(network, NUM_REGIONS)
    internal = sorted(
        {
            (edge.source, edge.target)
            for edge in network.edges()
            if partitioning.region_of(edge.source) == TARGET_REGION
            and partitioning.region_of(edge.target) == TARGET_REGION
        }
    )
    assert len(internal) >= EDGES_PER_BATCH
    base = {pair: network.edge_weight(*pair) for pair in internal}
    # One hot corridor, rush-hour style: the same edges congest and recover
    # through a factor schedule, so every batch is a genuine change and the
    # workload matches what the congestion-ramp stream generator emits.
    pairs = internal[:EDGES_PER_BATCH]
    factors = [1.5, 2.5, 4.0, 2.0, 1.0, 3.0]
    batches: List[List[Tuple[int, int, float]]] = []
    for index in range(max(count for _, _, count, _ in SCHEMES)):
        factor = factors[index % len(factors)]
        batches.append([(s, t, base[(s, t)] * factor) for s, t in pairs])
    return batches


def test_dynamic_updates_incremental_vs_full(network, update_batches):
    rows = []
    failures = []
    for name, params, num_batches, floor in SCHEMES:
        batches = update_batches[:num_batches]

        # Incremental path: one warm AirSystem, refresh() per batch.
        inc_network = network.copy()
        inc_network.clear_delta()
        system = AirSystem(inc_network)
        system.scheme(name, **params)
        inc_seconds = 0.0
        for batch in batches:
            inc_network.apply_updates(batch)
            started = time.perf_counter()
            refresh = system.refresh()
            inc_seconds += time.perf_counter() - started
            assert refresh.incremental == (air.canonical_name(name),)

        # Full path: rebuild the scheme from scratch after every batch.
        full_network = network.copy()
        full_network.clear_delta()
        full_seconds = 0.0
        scratch = None
        for batch in batches:
            full_network.apply_updates(batch)
            full_network.clear_delta()
            started = time.perf_counter()
            full_network.fingerprint()  # the cache re-key both paths pay
            scratch = air.create(name, full_network, **params)
            scratch.cycle
            full_seconds += time.perf_counter() - started

        # Bit-identity: the incrementally maintained cycle equals the final
        # from-scratch build (same mutated network on both sides).
        refreshed = system.scheme(name, **params)
        assert refreshed.cycle.signature() == scratch.cycle.signature(), (
            f"{name}: incremental cycle differs from a from-scratch rebuild"
        )
        assert refreshed.refresh_count == num_batches

        inc_per_sec = num_batches / inc_seconds
        full_per_sec = num_batches / full_seconds
        speedup = inc_per_sec / full_per_sec
        rows.append(
            [
                air.canonical_name(name),
                num_batches,
                round(full_seconds / num_batches * 1000.0, 2),
                round(inc_seconds / num_batches * 1000.0, 2),
                round(full_per_sec, 1),
                round(inc_per_sec, 1),
                round(speedup, 1),
                "bit-identical",
            ]
        )
        if speedup < floor:
            failures.append(
                f"{name}: incremental refresh is only {speedup:.2f}x the full "
                f"rebuild (floor {floor}x)"
            )

    table = report.format_table(
        [
            "Scheme",
            "Batches",
            "Full (ms)",
            "Incremental (ms)",
            "Full (refresh/s)",
            "Incremental (refresh/s)",
            "Speedup",
            "Cycle check",
        ],
        rows,
        title=(
            f"Incremental vs full cycle refresh -- {network.name} "
            f"({network.num_nodes} nodes, {network.num_edges} edges, "
            f"{EDGES_PER_BATCH}-edge batches inside one of {NUM_REGIONS} regions)"
        ),
    )
    write_report("dynamic_updates", table)
    write_json_report(
        "dynamic_updates",
        {
            "network": {
                "nodes": network.num_nodes,
                "edges": network.num_edges,
                "regions": NUM_REGIONS,
                "edges_per_batch": EDGES_PER_BATCH,
            },
            "by_scheme": [
                {
                    "scheme": row[0],
                    "batches": row[1],
                    "full_ms_per_refresh": row[2],
                    "incremental_ms_per_refresh": row[3],
                    "speedup": row[6],
                    "cycles_bit_identical": True,
                }
                for row in rows
            ],
        },
    )

    assert not failures, "; ".join(failures)
