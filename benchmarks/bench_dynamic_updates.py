"""Dynamic networks -- incremental cycle refresh vs full rebuild.

Not a table or figure of the paper: the paper's network is static, while a
production broadcast server must absorb a continuous stream of edge-weight
updates (congestion, closures).  This benchmark applies batches of
single-partition weight updates to a ~1k-node network and measures, per
scheme, the cycle-refresh throughput of

* **full** -- what a static system does after any mutation: rebuild the
  scheme (pre-computation included) from scratch, and
* **incremental** -- the engine's :meth:`AirSystem.refresh` routed through
  :meth:`AirIndexScheme.incremental_rebuild`: reuse weight-independent
  segments and re-run only the affected parts of the pre-computation.

Asserted invariants: the incrementally refreshed cycle is **bit-identical**
to a from-scratch build after every stream (compared via
``BroadcastCycle.signature()``), and the speedup meets a per-scheme floor.
DJ's cycle reuse and HiTi's dirty-block super-edge recompute are strictly
delta-local and carry a fixed >= 5x floor.  NR and EB refresh through the
border-path repair (:meth:`BorderPathPrecomputation.refresh`): a batch
dynamic-SSSP pass per affected border source that settles only the labels
that actually move and re-derives a source's published contributions only
when the change reaches a border chain.  Their floor defaults to 5x and is
CI-tunable through ``REPRO_DYNAMIC_MIN_SPEEDUP`` (same convention as
``REPRO_KERNEL_MIN_SPEEDUP``), so slow shared runners can relax it without
editing the benchmark.

A second test measures the *query stall* an update causes: blocking
:meth:`AirSystem.refresh` makes queries wait for the whole rebuild, while
:meth:`AirSystem.refresh_async` rebuilds into a shadow set and atomically
swaps, so queries keep being served from the superseded snapshot in the
meantime.

Run standalone like the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_dynamic_updates.py -q
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

import pytest

from repro import air
from repro.engine import AirSystem
from repro.experiments import report
from repro.network.generators import GeneratorConfig, generate_road_network
from repro.partitioning.kdtree import build_kdtree_partitioning

from conftest import write_json_report, write_report

#: The 1k-node benchmark network (realized size shrinks slightly because the
#: generator keeps the largest component).
NETWORK_CONFIG = GeneratorConfig(num_nodes=1000, num_edges=2300, seed=31)
NUM_REGIONS = 16
#: The partition whose internal edges the update batches touch.
TARGET_REGION = 5
EDGES_PER_BATCH = 3

#: Acceptance floor for the repair-based NR/EB refresh, overridable for slow
#: CI runners (measured >= 15x locally; 5x is the acceptance criterion).
DYNAMIC_MIN_SPEEDUP = float(os.environ.get("REPRO_DYNAMIC_MIN_SPEEDUP", "5.0"))

#: (scheme, params, batches to time, speedup floor).
SCHEMES: List[Tuple[str, Dict[str, int], int, float]] = [
    ("DJ", {}, 40, 5.0),
    ("HiTi", {"num_regions": NUM_REGIONS}, 10, 5.0),
    ("NR", {"num_regions": NUM_REGIONS}, 4, DYNAMIC_MIN_SPEEDUP),
    ("EB", {"num_regions": NUM_REGIONS}, 4, DYNAMIC_MIN_SPEEDUP),
]


@pytest.fixture(scope="module")
def network():
    net = generate_road_network(NETWORK_CONFIG, name="bench-dynamic-1k")
    net.clear_delta()
    return net


@pytest.fixture(scope="module")
def update_batches(network):
    """Alternating congest/restore batches confined to one kd partition."""
    partitioning = build_kdtree_partitioning(network, NUM_REGIONS)
    internal = sorted(
        {
            (edge.source, edge.target)
            for edge in network.edges()
            if partitioning.region_of(edge.source) == TARGET_REGION
            and partitioning.region_of(edge.target) == TARGET_REGION
        }
    )
    assert len(internal) >= EDGES_PER_BATCH
    base = {pair: network.edge_weight(*pair) for pair in internal}
    # One hot corridor, rush-hour style: the same edges congest and recover
    # through a factor schedule, so every batch is a genuine change and the
    # workload matches what the congestion-ramp stream generator emits.
    pairs = internal[:EDGES_PER_BATCH]
    factors = [1.5, 2.5, 4.0, 2.0, 1.0, 3.0]
    batches: List[List[Tuple[int, int, float]]] = []
    for index in range(max(count for _, _, count, _ in SCHEMES)):
        factor = factors[index % len(factors)]
        batches.append([(s, t, base[(s, t)] * factor) for s, t in pairs])
    return batches


def test_dynamic_updates_incremental_vs_full(network, update_batches):
    rows = []
    failures = []
    for name, params, num_batches, floor in SCHEMES:
        batches = update_batches[:num_batches]

        # Incremental path: one warm AirSystem, refresh() per batch.
        inc_network = network.copy()
        inc_network.clear_delta()
        system = AirSystem(inc_network)
        system.scheme(name, **params)
        inc_seconds = 0.0
        for batch in batches:
            inc_network.apply_updates(batch)
            started = time.perf_counter()
            refresh = system.refresh()
            inc_seconds += time.perf_counter() - started
            assert refresh.incremental == (air.canonical_name(name),)

        # Full path: rebuild the scheme from scratch after every batch.
        full_network = network.copy()
        full_network.clear_delta()
        full_seconds = 0.0
        scratch = None
        for batch in batches:
            full_network.apply_updates(batch)
            full_network.clear_delta()
            started = time.perf_counter()
            full_network.fingerprint()  # the cache re-key both paths pay
            scratch = air.create(name, full_network, **params)
            scratch.cycle
            full_seconds += time.perf_counter() - started

        # Bit-identity: the incrementally maintained cycle equals the final
        # from-scratch build (same mutated network on both sides).
        refreshed = system.scheme(name, **params)
        assert refreshed.cycle.signature() == scratch.cycle.signature(), (
            f"{name}: incremental cycle differs from a from-scratch rebuild"
        )
        assert refreshed.refresh_count == num_batches

        inc_per_sec = num_batches / inc_seconds
        full_per_sec = num_batches / full_seconds
        speedup = inc_per_sec / full_per_sec
        rows.append(
            [
                air.canonical_name(name),
                num_batches,
                round(full_seconds / num_batches * 1000.0, 2),
                round(inc_seconds / num_batches * 1000.0, 2),
                round(full_per_sec, 1),
                round(inc_per_sec, 1),
                round(speedup, 1),
                "bit-identical",
            ]
        )
        if speedup < floor:
            failures.append(
                f"{name}: incremental refresh is only {speedup:.2f}x the full "
                f"rebuild (floor {floor}x)"
            )

    table = report.format_table(
        [
            "Scheme",
            "Batches",
            "Full (ms)",
            "Incremental (ms)",
            "Full (refresh/s)",
            "Incremental (refresh/s)",
            "Speedup",
            "Cycle check",
        ],
        rows,
        title=(
            f"Incremental vs full cycle refresh -- {network.name} "
            f"({network.num_nodes} nodes, {network.num_edges} edges, "
            f"{EDGES_PER_BATCH}-edge batches inside one of {NUM_REGIONS} regions)"
        ),
    )
    write_report("dynamic_updates", table)
    write_json_report(
        "dynamic_updates",
        {
            "network": {
                "nodes": network.num_nodes,
                "edges": network.num_edges,
                "regions": NUM_REGIONS,
                "edges_per_batch": EDGES_PER_BATCH,
            },
            "min_speedup_floor": DYNAMIC_MIN_SPEEDUP,
            "by_scheme": [
                {
                    "scheme": row[0],
                    "batches": row[1],
                    "full_ms_per_refresh": row[2],
                    "incremental_ms_per_refresh": row[3],
                    "speedup": row[6],
                    "cycles_bit_identical": True,
                }
                for row in rows
            ],
        },
    )

    assert not failures, "; ".join(failures)


def test_refresh_async_stall_vs_blocking(network, update_batches):
    """Query stall while an update lands: blocking refresh vs shadow swap.

    Blocking :meth:`AirSystem.refresh` rebuilds the cached schemes in the
    caller's thread -- any query issued after ``apply_updates`` waits for
    the whole refresh, so its end-to-end stall is the refresh duration plus
    one service time.  :meth:`AirSystem.refresh_async` rebuilds into a
    shadow set while queries keep being served from the superseded
    snapshot, so the worst in-flight query latency stays near the baseline.

    Both modes run the same congest/recover batches on a system caching NR
    *and* EB; per round we record the stall and assert (on medians, to damp
    scheduler noise) that the async path stalls queries less than the
    blocking path.  Snapshot consistency is asserted too: every query
    answered during an async refresh equals either the pre-update or the
    post-update distance, never a torn intermediate.
    """
    params = {"num_regions": NUM_REGIONS}
    net = network.copy()
    net.clear_delta()
    system = AirSystem(net)
    system.scheme("NR", **params)
    system.scheme("EB", **params)

    # A query pair with a finite answer, far apart in id space.
    node_ids = net.node_ids()
    source = node_ids[0]
    target = next(
        t
        for t in node_ids[::-1]
        if t != source and system.query("NR", source, t, **params).found
    )

    def query_once() -> Tuple[float, float]:
        started = time.perf_counter()
        result = system.query("NR", source, target, **params)
        return time.perf_counter() - started, result.distance

    baseline_s = sorted(query_once()[0] for _ in range(20))[10]

    rounds = 4
    blocking_stall_ms: List[float] = []
    for batch in update_batches[:rounds]:
        net.apply_updates(batch)
        started = time.perf_counter()
        system.refresh()
        refresh_s = time.perf_counter() - started
        # What a query queued behind the blocking refresh experiences.
        blocking_stall_ms.append((refresh_s + baseline_s) * 1000.0)

    async_stall_ms: List[float] = []
    for batch in update_batches[rounds : 2 * rounds]:
        pre = system.query("NR", source, target, **params).distance
        net.apply_updates(batch)
        handle = system.refresh_async()
        worst_s, answers = 0.0, []
        while True:
            finished = handle.done
            elapsed, distance = query_once()
            worst_s = max(worst_s, elapsed)
            answers.append(distance)
            if finished:
                break
        handle.wait(timeout=120.0)
        post = system.query("NR", source, target, **params).distance
        for distance in answers:
            assert distance in (pre, post), (
                "query served during refresh_async returned a torn distance"
            )
        async_stall_ms.append(worst_s * 1000.0)

    blocking_median = sorted(blocking_stall_ms)[rounds // 2]
    async_median = sorted(async_stall_ms)[rounds // 2]

    table = report.format_table(
        ["Mode", "Stall p50 (ms)", "Stall max (ms)", "Rounds"],
        [
            [
                "blocking refresh()",
                round(blocking_median, 2),
                round(max(blocking_stall_ms), 2),
                rounds,
            ],
            [
                "refresh_async()",
                round(async_median, 2),
                round(max(async_stall_ms), 2),
                rounds,
            ],
        ],
        title=(
            f"Worst query stall per update batch -- {net.name}, NR+EB cached, "
            f"baseline query {baseline_s * 1000.0:.2f} ms"
        ),
    )
    write_report("dynamic_updates_async", table)
    write_json_report(
        "dynamic_updates_async",
        {
            "baseline_query_ms": round(baseline_s * 1000.0, 3),
            "rounds": rounds,
            "blocking_stall_ms": {
                "p50": round(blocking_median, 3),
                "max": round(max(blocking_stall_ms), 3),
            },
            "async_stall_ms": {
                "p50": round(async_median, 3),
                "max": round(max(async_stall_ms), 3),
            },
            "stall_reduction": round(blocking_median / async_median, 1)
            if async_median
            else None,
        },
    )

    assert async_median < blocking_median, (
        f"refresh_async stalled queries for {async_median:.2f} ms (median), "
        f"not less than the blocking refresh's {blocking_median:.2f} ms"
    )
