"""Shared fixtures and report plumbing for the table/figure benchmarks.

Every benchmark module reproduces one table or figure of the paper: it builds
the (scaled) evaluation network, runs the competing methods, prints the rows
or series the paper reports, and stores the same text under
``benchmarks/reports/`` so the output survives pytest's capture.

The network scale defaults to ``REPRO_SCALE`` (see
:mod:`repro.experiments.config`); absolute numbers therefore differ from the
paper, but the relative behaviour -- which method wins and by roughly what
factor -- is what the reports are meant to show.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys

import pytest

from repro.experiments import ExperimentConfig, scale_from_env
from repro.version import __version__

REPORT_DIR = pathlib.Path(__file__).parent / "reports"
#: Default destination of the machine-readable ``BENCH_*.json`` reports:
#: the repository root, so the perf trajectory is versioned next to the
#: code.  Overridable per run with ``--bench-json-dir``.
ROOT_DIR = pathlib.Path(__file__).parent.parent
_json_dir = ROOT_DIR


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--bench-json-dir",
        default=None,
        help="Directory for the machine-readable BENCH_<name>.json reports "
        "(default: the repository root).",
    )


def pytest_configure(config) -> None:
    global _json_dir
    override = config.getoption("--bench-json-dir", default=None)
    if override:
        _json_dir = pathlib.Path(override)


def write_report(name: str, text: str) -> None:
    """Print a report and persist it under ``benchmarks/reports/``."""
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


def write_json_report(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable benchmark report as ``BENCH_<name>.json``.

    The payload is wrapped with enough provenance (package version, python
    and platform) for longitudinal comparisons across runs; keys are sorted
    so diffs between runs stay readable.
    """
    document = {
        "benchmark": name,
        "repro_version": __version__,
        "python": platform.python_version(),
        "platform": sys.platform,
        "results": payload,
    }
    _json_dir.mkdir(parents=True, exist_ok=True)
    path = _json_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"[bench-json] wrote {path}")
    return path


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Configuration shared by the benchmarks (smaller workloads than tests)."""
    # Region and landmark counts follow the paper's fine-tuning (32/16/4 for
    # full-size Germany) scaled down with the network: at REPRO_SCALE=0.05 a
    # region keeps roughly the same node population as in the paper.
    return ExperimentConfig(
        network="germany",
        scale=scale_from_env(0.05),
        seed=13,
        num_queries=int(os.environ.get("REPRO_BENCH_QUERIES", "16")),
        eb_nr_regions=16,
        arcflag_regions=16,
        hiti_regions=16,
        num_landmarks=4,
    )


@pytest.fixture(scope="session")
def small_bench_config(bench_config) -> ExperimentConfig:
    """Reduced-scale configuration for the multi-network experiments."""
    return ExperimentConfig(
        network=bench_config.network,
        scale=min(bench_config.scale, 0.02),
        seed=bench_config.seed,
        num_queries=max(6, bench_config.num_queries // 2),
        eb_nr_regions=16,
        arcflag_regions=16,
        hiti_regions=16,
        num_landmarks=4,
    )
