"""Shared fixtures and report plumbing for the table/figure benchmarks.

Every benchmark module reproduces one table or figure of the paper: it builds
the (scaled) evaluation network, runs the competing methods, prints the rows
or series the paper reports, and stores the same text under
``benchmarks/reports/`` so the output survives pytest's capture.

The network scale defaults to ``REPRO_SCALE`` (see
:mod:`repro.experiments.config`); absolute numbers therefore differ from the
paper, but the relative behaviour -- which method wins and by roughly what
factor -- is what the reports are meant to show.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import ExperimentConfig, scale_from_env

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def write_report(name: str, text: str) -> None:
    """Print a report and persist it under ``benchmarks/reports/``."""
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Configuration shared by the benchmarks (smaller workloads than tests)."""
    # Region and landmark counts follow the paper's fine-tuning (32/16/4 for
    # full-size Germany) scaled down with the network: at REPRO_SCALE=0.05 a
    # region keeps roughly the same node population as in the paper.
    return ExperimentConfig(
        network="germany",
        scale=scale_from_env(0.05),
        seed=13,
        num_queries=int(os.environ.get("REPRO_BENCH_QUERIES", "16")),
        eb_nr_regions=16,
        arcflag_regions=16,
        hiti_regions=16,
        num_landmarks=4,
    )


@pytest.fixture(scope="session")
def small_bench_config(bench_config) -> ExperimentConfig:
    """Reduced-scale configuration for the multi-network experiments."""
    return ExperimentConfig(
        network=bench_config.network,
        scale=min(bench_config.scale, 0.02),
        seed=bench_config.seed,
        num_queries=max(6, bench_config.num_queries // 2),
        eb_nr_regions=16,
        arcflag_regions=16,
        hiti_regions=16,
        num_landmarks=4,
    )
