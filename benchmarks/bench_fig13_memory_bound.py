"""Figure 13 -- client-side pre-computation for memory-bound devices (§6.1).

Reproduces the paper's Figure 13: peak client memory (a) and client CPU time
(b) for EB and NR with and without the super-edge pre-computation scheme of
Section 6.1.

Expected shape (paper): the scheme lowers peak memory (by roughly 35% at the
paper's scale; the saving shrinks with the network because smaller regions
have proportionally more border nodes) at the cost of additional client CPU
time spent compressing regions while they are received.
"""

from __future__ import annotations

import pytest

from repro.engine import AirSystem
from repro.experiments import QueryWorkload, build_network, report

from conftest import write_report


@pytest.fixture(scope="module")
def memory_bound_runs(bench_config):
    system = AirSystem(build_network(bench_config), config=bench_config)
    workload = QueryWorkload(system.network, bench_config.num_queries, seed=bench_config.seed)
    results = {}
    for method in ("EB", "NR"):
        for memory_bound in (False, True):
            run = system.query_batch(method, workload, memory_bound=memory_bound)
            assert run.mismatches == 0
            results[(method, memory_bound)] = run.mean
    return system, results


def test_figure13_memory_bound_processing(benchmark, memory_bound_runs, bench_config):
    system, results = memory_bound_runs
    network = system.network

    # Benchmark a single memory-bound NR query (cycle served from the cache).
    client = system.client("NR", system.default_options.replace(memory_bound=True))
    nodes = network.node_ids()
    benchmark(lambda: client.query(nodes[2], nodes[-2]))

    rows = []
    for method in ("NR", "EB"):
        for memory_bound in (True, False):
            mean = results[(method, memory_bound)]
            label = f"{method} ({'w/' if memory_bound else 'w/o'} precomp)"
            rows.append(
                [
                    label,
                    round(mean.peak_memory_bytes / 1024.0, 2),
                    round(mean.cpu_seconds * 1000.0, 3),
                ]
            )
    table = report.format_table(
        ["Configuration", "Memory (KB)", "CPU (ms)"],
        rows,
        title=(
            "Figure 13: client-side pre-computation scheme -- "
            f"{network.name} (scale={bench_config.scale})"
        ),
    )
    write_report("fig13_memory_bound", table)

    # Shape assertions: the scheme reduces peak memory and costs CPU.
    for method in ("NR", "EB"):
        with_precomp = results[(method, True)]
        without = results[(method, False)]
        assert with_precomp.peak_memory_bytes < without.peak_memory_bytes
        assert with_precomp.cpu_seconds > 0.0
