"""Figure 13 -- client-side pre-computation for memory-bound devices (§6.1).

Reproduces the paper's Figure 13: peak client memory (a) and client CPU time
(b) for EB and NR with and without the super-edge pre-computation scheme of
Section 6.1.

Expected shape (paper): the scheme lowers peak memory (by roughly 35% at the
paper's scale; the saving shrinks with the network because smaller regions
have proportionally more border nodes) at the cost of additional client CPU
time spent compressing regions while they are received.
"""

from __future__ import annotations

import pytest

from repro.broadcast.metrics import average_metrics
from repro.experiments import QueryWorkload, build_network, build_scheme, report

from conftest import write_report


@pytest.fixture(scope="module")
def memory_bound_runs(bench_config):
    network = build_network(bench_config)
    workload = QueryWorkload(network, bench_config.num_queries, seed=bench_config.seed)
    results = {}
    for method in ("EB", "NR"):
        scheme = build_scheme(method, network, bench_config)
        for memory_bound in (False, True):
            client = scheme.client(bench_config.device, memory_bound=memory_bound)
            metrics = []
            for query in workload:
                outcome = client.query(query.source, query.target)
                assert abs(outcome.distance - query.true_distance) <= 1e-6 * max(
                    1.0, query.true_distance
                )
                metrics.append(outcome.metrics)
            results[(method, memory_bound)] = average_metrics(metrics)
    return network, results


def test_figure13_memory_bound_processing(benchmark, memory_bound_runs, bench_config):
    network, results = memory_bound_runs

    # Benchmark a single memory-bound NR query.
    scheme = build_scheme("NR", network, bench_config)
    client = scheme.client(bench_config.device, memory_bound=True)
    nodes = network.node_ids()
    benchmark(lambda: client.query(nodes[2], nodes[-2]))

    rows = []
    for method in ("NR", "EB"):
        for memory_bound in (True, False):
            mean = results[(method, memory_bound)]
            label = f"{method} ({'w/' if memory_bound else 'w/o'} precomp)"
            rows.append(
                [
                    label,
                    round(mean.peak_memory_bytes / 1024.0, 2),
                    round(mean.cpu_seconds * 1000.0, 3),
                ]
            )
    table = report.format_table(
        ["Configuration", "Memory (KB)", "CPU (ms)"],
        rows,
        title=(
            "Figure 13: client-side pre-computation scheme -- "
            f"{network.name} (scale={bench_config.scale})"
        ),
    )
    write_report("fig13_memory_bound", table)

    # Shape assertions: the scheme reduces peak memory and costs CPU.
    for method in ("NR", "EB"):
        with_precomp = results[(method, True)]
        without = results[(method, False)]
        assert with_precomp.peak_memory_bytes < without.peak_memory_bytes
        assert with_precomp.cpu_seconds > 0.0
