"""Figure 10 -- effect of shortest path length (default network).

Reproduces the paper's Figure 10: tuning time (a), client memory (b), access
latency (c) and CPU time (d) as a function of the query's shortest path
length, with the query workload classified into four length buckets.

Expected shape (paper): NR is by far the best on tuning time and memory and
EB the runner-up; both degrade as paths get longer (EB faster, since its
"network ellipse" grows); the full-cycle competitors are flat and poor; NR's
access latency can even beat Dijkstra's because it receives only a subset of
the cycle.
"""

from __future__ import annotations

import pytest

from repro import air
from repro.broadcast.metrics import average_metrics
from repro.engine import AirSystem
from repro.experiments import QueryWorkload, build_network, report

from conftest import write_report

METHODS = air.comparison_schemes()


@pytest.fixture(scope="module")
def figure10_runs(bench_config):
    system = AirSystem(build_network(bench_config), config=bench_config)
    workload = QueryWorkload(system.network, bench_config.num_queries, seed=bench_config.seed)
    buckets = workload.bucket_by_length(4)

    per_bucket = {}
    mismatches = 0
    for label, queries in buckets.items():
        if not queries:
            continue
        per_bucket[label] = {}
        for method in METHODS:
            run = system.query_batch(method, queries)
            mismatches += run.mismatches
            per_bucket[label][method] = run.mean
    return system, per_bucket, mismatches


def test_figure10_effect_of_path_length(benchmark, figure10_runs, bench_config):
    system, per_bucket, mismatches = figure10_runs
    network = system.network
    assert mismatches == 0
    # Every method's cycle was built exactly once despite the per-bucket runs.
    assert system.cache_info().misses == len(METHODS)

    # Benchmark a single NR on-air query (the per-query client protocol).
    nodes = network.node_ids()
    client = system.client("NR")
    benchmark(lambda: client.query(nodes[1], nodes[-2]))

    lines = [
        f"Figure 10: effect of shortest path length -- {network.name} "
        f"(scale={bench_config.scale}, {sum(1 for _ in per_bucket)} buckets)"
    ]
    for metric_name, getter, unit in (
        ("Tuning time (packets)", lambda m: m.tuning_time_packets, ""),
        ("Memory (KB)", lambda m: m.peak_memory_bytes / 1024.0, ""),
        ("Access latency (packets)", lambda m: m.access_latency_packets, ""),
        ("CPU time (ms)", lambda m: m.cpu_seconds * 1000.0, ""),
    ):
        lines.append("")
        lines.append(f"-- {metric_name} --")
        for method in METHODS:
            series = {
                label: float(getter(bucket[method]))
                for label, bucket in per_bucket.items()
            }
            lines.append(report.format_series(method, series, unit))
    write_report("fig10_path_length", "\n".join(lines))

    # Shape assertions on the aggregate over all buckets.
    overall = {
        method: average_metrics(
            [bucket[method] for bucket in per_bucket.values()]
        )
        for method in METHODS
    }
    for other in ("EB", "DJ", "LD", "AF"):
        assert overall["NR"].tuning_time_packets <= overall[other].tuning_time_packets
        assert overall["NR"].peak_memory_bytes <= overall[other].peak_memory_bytes
    assert overall["EB"].tuning_time_packets < overall["LD"].tuning_time_packets
    assert overall["EB"].tuning_time_packets < overall["AF"].tuning_time_packets
