"""Ablations of the design decisions DESIGN.md calls out.

Not a table or figure of the paper, but each ablation isolates one design
choice the paper argues for:

* kd-tree vs regular-grid partitioning for EB (Section 4.1),
* the cross-border / local segment split (Section 4.1, "~20% tuning saving"),
* square vs row-major packing of EB's A-matrix cells (Section 6.2, Figure 9),
* the (1, m) interleaving optimum (Section 2.2).
"""

from __future__ import annotations

import pytest

from repro.air.packing import (
    RowMajorCellPacking,
    SquareCellPacking,
    expected_vulnerable_packets,
)
from repro.broadcast.interleave import optimal_m
from repro.engine import AirSystem
from repro.experiments import QueryWorkload, build_network, report
from repro.partitioning.grid import build_grid_partitioning
from repro.partitioning.kdtree import build_kdtree_partitioning

from conftest import write_report


@pytest.fixture(scope="module")
def ablation_network(bench_config):
    system = AirSystem(build_network(bench_config), config=bench_config)
    workload = QueryWorkload(
        system.network, max(8, bench_config.num_queries // 2), seed=bench_config.seed
    )
    return system, workload


def test_ablation_kdtree_vs_grid_partition_balance(benchmark, ablation_network):
    """Section 4.1: kd-tree regions are balanced, grid cells are not."""
    network = ablation_network[0].network
    kdtree = build_kdtree_partitioning(network, 16)
    benchmark.pedantic(lambda: build_grid_partitioning(network, 4, 4), rounds=1, iterations=1)
    grid = build_grid_partitioning(network, 4, 4)

    rows = [
        ["kd-tree", max(kdtree.region_sizes()), min(kdtree.region_sizes())],
        ["grid", max(grid.region_sizes()), min(grid.region_sizes())],
    ]
    table = report.format_table(
        ["Partitioning", "Largest region", "Smallest region"],
        rows,
        title="Ablation: kd-tree vs regular grid partitioning (16 regions)",
    )
    write_report("ablation_partitioning", table)

    spread_kdtree = max(kdtree.region_sizes()) - min(kdtree.region_sizes())
    spread_grid = max(grid.region_sizes()) - min(grid.region_sizes())
    assert spread_kdtree <= spread_grid


def test_ablation_cross_border_split_saves_tuning(benchmark, ablation_network, bench_config):
    """Section 4.1: receiving only cross-border segments of intermediate
    regions saves tuning time (the paper reports about 20%)."""
    system, workload = ablation_network
    scheme = system.scheme("EB")
    client = system.client("EB")
    nodes = system.network.node_ids()
    benchmark(lambda: client.query(nodes[0], nodes[-1]))

    run = system.query_batch("EB", workload)
    with_split = run.mean.tuning_time_packets

    # Without the optimization the client would also receive the local
    # segments of every needed intermediate region.
    without_split = 0
    for query, metrics in zip(workload, run.per_query):
        source_region = scheme.partitioning.region_of(query.source)
        target_region = scheme.partitioning.region_of(query.target)
        extra = 0
        for region in scheme.precomputation.needed_regions_eb(source_region, target_region):
            if region in (source_region, target_region):
                continue
            extra += scheme.cycle.segment(f"region-{region}-local").num_packets
        without_split += metrics.tuning_time_packets + extra
    without_split /= max(1, len(run.per_query))

    table = report.format_table(
        ["Configuration", "Mean tuning (packets)"],
        [
            ["EB with cross-border/local split", round(with_split, 1)],
            ["EB receiving full regions", round(without_split, 1)],
        ],
        title="Ablation: cross-border vs full region reception (EB)",
    )
    write_report("ablation_cross_border_split", table)
    assert with_split < without_split


def test_ablation_square_vs_row_major_packing(benchmark, bench_config):
    """Section 6.2 / Figure 9: square packing exposes fewer packets to loss."""
    regions = bench_config.eb_nr_regions
    cells_per_packet = 15
    benchmark.pedantic(
        lambda: expected_vulnerable_packets(SquareCellPacking(regions, cells_per_packet)),
        rounds=1,
        iterations=1,
    )
    square = expected_vulnerable_packets(SquareCellPacking(regions, cells_per_packet))
    row_major = expected_vulnerable_packets(RowMajorCellPacking(regions, cells_per_packet))
    table = report.format_table(
        ["Packing", "Mean vulnerable packets per query"],
        [["square (w x w)", round(square, 2)], ["row-major", round(row_major, 2)]],
        title="Ablation: EB index cell packing under packet loss",
    )
    write_report("ablation_packing", table)
    assert square < row_major


def test_ablation_one_m_interleaving_optimum(benchmark, ablation_network, bench_config):
    """Section 2.2: the (1, m) optimum balances index wait against data wait."""
    system, _ = ablation_network
    scheme = system.scheme("EB")
    data_packets = scheme.server_metrics().data_packets
    index_packets = scheme.index_packets
    benchmark.pedantic(lambda: optimal_m(data_packets, index_packets), rounds=1, iterations=1)

    rows = []
    best_m = optimal_m(data_packets, index_packets)
    for m in sorted({1, best_m, 4 * best_m}):
        # Expected waits under the standard (1, m) model: the index wait is
        # half an inter-index gap, the data wait half the cycle, and the
        # cycle grows by m copies of the index.
        cycle = data_packets + m * index_packets
        index_wait = cycle / (2 * m)
        data_wait = cycle / 2
        rows.append([m, round(index_wait + data_wait, 1), m == best_m])
    table = report.format_table(
        ["m", "Expected wait (packets)", "Optimal"],
        rows,
        title="Ablation: (1, m) interleaving for EB's index",
    )
    write_report("ablation_interleaving", table)

    waits = {row[0]: row[1] for row in rows}
    assert waits[best_m] <= min(waits.values()) + 1e-6
