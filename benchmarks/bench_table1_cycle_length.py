"""Table 1 -- broadcast cycle length.

Reproduces the paper's Table 1: for every method (DJ, NR, EB, LD, AF, SPQ,
HiTi) the length of one broadcast cycle in packets and its duration at the
two 3G channel rates (2 Mbps and 384 Kbps).

Expected shape (paper): DJ has the shortest possible cycle, NR and EB follow
closely (they broadcast very little indexing information), Landmark and
ArcFlag pay for their per-node/per-edge vectors, and SPQ and HiTi broadcast
pre-computed information several times larger than the network itself.
"""

from __future__ import annotations

import pytest

from repro import air
from repro.broadcast.device import CHANNEL_2MBPS, CHANNEL_384KBPS
from repro.engine import AirSystem
from repro.experiments import build_network, report

from conftest import write_report


@pytest.fixture(scope="module")
def schemes(bench_config):
    """Every Table 1 method built over the (scaled) default network."""
    system = AirSystem(build_network(bench_config), config=bench_config)
    for method in air.available_schemes():
        system.scheme(method)  # builds the cycle on first access
    return system


def test_table1_cycle_length(benchmark, schemes, bench_config):
    system = schemes
    network = system.network

    # Benchmark the cycle layout step of the paper's best method (its
    # pre-computation already happened when the fixture built the scheme).
    benchmark(system.scheme("NR").build_cycle)

    rows = []
    for method in air.available_schemes():
        metrics = system.scheme(method).server_metrics()
        rows.append(
            [
                method,
                metrics.cycle_packets,
                round(metrics.cycle_seconds(CHANNEL_2MBPS), 3),
                round(metrics.cycle_seconds(CHANNEL_384KBPS), 3),
            ]
        )
    table = report.format_table(
        ["Method", "Packets", "Sec (2Mbps)", "Sec (384Kbps)"],
        rows,
        title=(
            f"Table 1: broadcast cycle length -- {network.name} "
            f"(scale={bench_config.scale}, {network.num_nodes} nodes, "
            f"{network.num_edges} edges)"
        ),
    )
    write_report("table1_cycle_length", table)

    # Shape assertions mirroring the paper's ordering: Dijkstra's cycle is the
    # shortest, NR and EB stay close to it, Landmark and ArcFlag pay for
    # their vectors/flags, and the pre-computation-heavy SPQ and HiTi carry
    # substantially more than EB.  (The exact AF-vs-HiTi order depends on the
    # network's edge density and is not asserted; see EXPERIMENTS.md.)
    packets = {row[0]: row[1] for row in rows}
    assert packets["DJ"] <= packets["NR"] <= packets["EB"]
    assert packets["EB"] < packets["LD"] < packets["AF"]
    assert packets["EB"] < packets["SPQ"]
    assert packets["EB"] < packets["HiTi"]
