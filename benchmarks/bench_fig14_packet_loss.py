"""Figure 14 -- robustness to packet loss (Appendix C.5).

Reproduces the paper's Figure 14: tuning time (a) and access latency (b) of
every method while the packet loss rate varies from 0.1% to 10% (the
practical range cited by the paper).

Expected shape (paper): every method degrades as the loss rate grows, but
the lower a method's tuning time, the less it is exposed to losses -- NR
remains the clear winner across the whole range.
"""

from __future__ import annotations

import pytest

from repro import air
from repro.engine import AirSystem
from repro.experiments import QueryWorkload, build_network, report

from conftest import write_report

LOSS_RATES = [0.001, 0.005, 0.01, 0.05, 0.10]
COMPARISON_METHODS = air.comparison_schemes()


@pytest.fixture(scope="module")
def loss_sweep(bench_config):
    system = AirSystem(build_network(bench_config), config=bench_config)
    workload = QueryWorkload(
        system.network, max(8, bench_config.num_queries // 2), seed=bench_config.seed
    )
    results = {}
    for rate in LOSS_RATES:
        results[rate] = {}
        for method in COMPARISON_METHODS:
            results[rate][method] = system.query_batch(
                method, workload, loss_rate=rate, loss_seed=int(rate * 1e4)
            )
    # The whole sweep builds each scheme's cycle exactly once.
    assert system.cache_info().misses == len(COMPARISON_METHODS)
    return system, results


def test_figure14_packet_loss(benchmark, loss_sweep, bench_config):
    system, results = loss_sweep
    network = system.network

    # Benchmark one NR query over a 5% lossy channel.
    channel = system.channel("NR", loss_rate=0.05, seed=99)
    client = system.client("NR")
    nodes = network.node_ids()
    benchmark(lambda: client.query(nodes[4], nodes[-4], channel=channel))

    lines = [
        f"Figure 14: effect of packet loss -- {network.name} "
        f"(scale={bench_config.scale}, loss rates {LOSS_RATES})"
    ]
    for metric_name, getter in (
        ("Tuning time (packets)", lambda m: m.tuning_time_packets),
        ("Access latency (packets)", lambda m: m.access_latency_packets),
    ):
        lines.append("")
        lines.append(f"-- {metric_name} --")
        for method in COMPARISON_METHODS:
            series = {
                f"{rate * 100:g}%": float(getter(results[rate][method].mean))
                for rate in LOSS_RATES
            }
            lines.append(report.format_series(method, series))
    write_report("fig14_packet_loss", "\n".join(lines))

    # Shape assertions.
    for rate in LOSS_RATES:
        for method, run in results[rate].items():
            assert run.mismatches == 0, f"{method} wrong under {rate:.1%} loss"
        # NR keeps the lowest tuning time at every loss rate.
        nr_tuning = results[rate]["NR"].mean.tuning_time_packets
        for other in ("DJ", "LD", "AF"):
            assert nr_tuning < results[rate][other].mean.tuning_time_packets
    # Full-cycle methods degrade visibly between the smallest and largest rate.
    for method in ("DJ", "LD", "AF"):
        assert (
            results[LOSS_RATES[-1]][method].mean.tuning_time_packets
            > results[LOSS_RATES[0]][method].mean.tuning_time_packets
        )
