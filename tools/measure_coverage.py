#!/usr/bin/env python
"""Approximate line coverage of ``src/repro`` under the tier-1 test suite.

CI measures coverage with ``pytest-cov`` (see ``.github/workflows/ci.yml``);
this tool exists for environments without the ``coverage`` package -- it
traces line events with :func:`sys.settrace` restricted to the ``repro``
package and compares against the executable lines found in each file's
compiled code objects.  The numbers track coverage.py closely but not
exactly (this approximation has no ``# pragma: no cover`` support, so it
reads slightly *lower*), which makes it a safe source for picking the CI
``--cov-fail-under`` floor.

Run from the repository root::

    PYTHONPATH=src python tools/measure_coverage.py
"""

from __future__ import annotations

import dis
import pathlib
import sys
import threading

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
SRC_PREFIX = str(SRC)

executed: dict = {}


def _local_trace(frame, event, arg):
    if event == "line":
        executed.setdefault(frame.f_code.co_filename, set()).add(frame.f_lineno)
    return _local_trace


def _global_trace(frame, event, arg):
    if frame.f_code.co_filename.startswith(SRC_PREFIX):
        return _local_trace
    return None


def _executable_lines(code) -> set:
    lines = {line for _, line in dis.findlinestarts(code) if line is not None}
    for const in code.co_consts:
        if isinstance(const, type(code)):
            lines |= _executable_lines(const)
    return lines


def main() -> int:
    import pytest

    sys.settrace(_global_trace)
    threading.settrace(_global_trace)
    exit_code = pytest.main(["-q", "-p", "no:cacheprovider", "tests"])
    sys.settrace(None)
    threading.settrace(None)
    if exit_code != 0:
        print(f"test suite failed (exit {exit_code}); coverage numbers unreliable")
        return int(exit_code)

    rows = []
    total_lines = total_hit = 0
    for path in sorted(SRC.rglob("*.py")):
        code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
        lines = _executable_lines(code)
        hit = lines & executed.get(str(path), set())
        total_lines += len(lines)
        total_hit += len(hit)
        percent = 100.0 * len(hit) / len(lines) if lines else 100.0
        rows.append((percent, path.relative_to(SRC.parent), len(hit), len(lines)))

    for percent, rel, hit, count in sorted(rows):
        print(f"{percent:6.1f}%  {hit:5d}/{count:<5d}  {rel}")
    overall = 100.0 * total_hit / total_lines
    print(f"\nTOTAL: {total_hit}/{total_lines} executable lines = {overall:.2f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
