#!/usr/bin/env python
"""cProfile harness over a registered scheme's build / query / refresh paths.

The SP-kernel PR found its wins by profiling exactly these three phases;
this tool packages that workflow so the next perf PR starts from data, not
guesses.  For any registered scheme it profiles:

* **build** -- scheme construction through the registry (pre-computation
  plus cycle layout),
* **query** -- a deterministic on-air workload through the scheme's client,
* **refresh** -- weight-update batches routed through the engine's
  incremental rebuild path.

Run from the repository root::

    PYTHONPATH=src python tools/profile_hotpaths.py --scheme NR
    PYTHONPATH=src python tools/profile_hotpaths.py --scheme HiTi \
        --network milan --scale 0.02 --queries 32 --top 25 --sort tottime

Pass ``--phases build,query`` to skip phases, and ``--no-accelerator`` to
pin the kernel to its pure-Python loops (handy for isolating how much of a
hot path is scipy-bound versus interpreter-bound).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import random
import sys


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scheme", default="NR", help="registered scheme name (see `repro schemes`)")
    parser.add_argument("--network", default="germany", help="paper network name")
    parser.add_argument("--scale", type=float, default=0.02, help="network down-scaling factor")
    parser.add_argument("--seed", type=int, default=13, help="generator / workload seed")
    parser.add_argument("--queries", type=int, default=16, help="queries in the profiled workload")
    parser.add_argument("--update-batches", type=int, default=4, help="weight-update batches to refresh through")
    parser.add_argument("--edges-per-batch", type=int, default=3, help="edges mutated per update batch")
    parser.add_argument("--top", type=int, default=20, help="rows of the profile table to print")
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort key",
    )
    parser.add_argument(
        "--phases",
        default="build,query,refresh",
        help="comma-separated subset of build,query,refresh",
    )
    parser.add_argument(
        "--no-accelerator",
        action="store_true",
        help="disable the scipy accelerator (kernel runs its pure-Python loops)",
    )
    return parser.parse_args(argv)


def profile_phase(title: str, func, sort: str, top: int) -> None:
    print(f"\n{'=' * 72}\n  {title}\n{'=' * 72}")
    profiler = cProfile.Profile()
    profiler.enable()
    func()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(top)


def main(argv=None) -> int:
    args = parse_args(argv)
    from repro import air
    from repro.engine import AirSystem
    from repro.experiments import ExperimentConfig, QueryWorkload
    from repro.network import datasets
    from repro.network.algorithms import kernel

    if args.no_accelerator:
        kernel.USE_ACCELERATOR = False
    phases = {phase.strip() for phase in args.phases.split(",") if phase.strip()}
    unknown = phases - {"build", "query", "refresh"}
    if unknown:
        raise SystemExit(f"unknown phases: {', '.join(sorted(unknown))}")

    scheme_name = air.canonical_name(args.scheme)
    config = ExperimentConfig(network=args.network, scale=args.scale, seed=args.seed)
    network = datasets.load(args.network, scale=args.scale, seed=args.seed)
    print(
        f"profiling {scheme_name} on {network.name} "
        f"({network.num_nodes} nodes, {network.num_edges} edges, "
        f"accelerator={'off' if args.no_accelerator else 'auto'})"
    )

    system = AirSystem(network, config=config)
    if "build" in phases:
        profile_phase(
            f"build: {scheme_name} pre-computation + cycle layout",
            lambda: system.scheme(scheme_name),
            args.sort,
            args.top,
        )
    else:
        system.scheme(scheme_name)

    if "query" in phases:
        workload = QueryWorkload(network, args.queries, seed=args.seed)
        profile_phase(
            f"query: {len(workload)} on-air queries",
            lambda: system.query_batch(scheme_name, workload),
            args.sort,
            args.top,
        )

    if "refresh" in phases:
        rng = random.Random(args.seed)
        edges = list(network.edges())

        def run_refreshes() -> None:
            for _ in range(args.update_batches):
                batch = []
                for _ in range(args.edges_per_batch):
                    edge = rng.choice(edges)
                    batch.append(
                        (
                            edge.source,
                            edge.target,
                            max(1e-3, edge.weight * rng.uniform(0.5, 2.0)),
                        )
                    )
                system.apply_updates(batch)

        profile_phase(
            f"refresh: {args.update_batches} weight-update batches "
            f"x {args.edges_per_batch} edges",
            run_refreshes,
            args.sort,
            args.top,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
